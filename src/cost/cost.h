// MIPS-R3000-flavored cost model.
//
// The paper reports code/data memory in bytes and execution time in cycles
// for a MIPS R3000. We cannot run their toolchain, so this model assigns
// deterministic per-construct costs:
//  * cycles per executed operation (tests, loads/stores, calls, copies,
//    kernel services) convert the engines' abstract counters to time;
//  * bytes per generated construct (decision-tree nodes, leaves, inline
//    data statements, extracted functions, per-state dispatch) convert an
//    EFSM into a code-size estimate — mirroring what the automaton C code
//    generator emits, including the duplication of inline actions across
//    leaves that makes collapsed automata large.
// Absolute numbers are calibrated to land in Table 1's regime; only the
// *shape* (who is bigger/faster and by roughly what factor) is claimed.
#pragma once

#include <cstdint>

#include "src/efsm/efsm.h"
#include "src/frontend/ast.h"
#include "src/interp/eval.h"
#include "src/runtime/engine.h"

namespace ecl::cost {

struct CostParams {
    // --- cycles ---
    unsigned cycReactionEntry = 14; ///< prologue + state dispatch
    unsigned cycTest = 3;           ///< load + compare + branch
    unsigned cycExprOp = 1;
    unsigned cycLoad = 2;
    unsigned cycStore = 2;
    unsigned cycBranch = 2;
    unsigned cycCall = 10;
    unsigned cycPerAggByte = 1;
    unsigned cycEmit = 5;

    // --- RTOS cycles ---
    unsigned cycKernelDispatch = 150; ///< scheduler pop + task entry
    unsigned cycContextSwitch = 110;  ///< register save/restore
    unsigned cycEventDeliver = 40;    ///< copy event into 1-place buffer

    // --- code bytes ---
    unsigned bytesPerStateEntry = 8;   ///< jump-table entry + label
    unsigned bytesPerTestNode = 12;
    unsigned bytesPerLeaf = 10;        ///< state update + return path
    unsigned bytesPerEmit = 14;
    unsigned bytesPerAstNode = 6;      ///< average instruction bytes per AST node
    unsigned bytesPerExtractedFn = 28; ///< function prologue/epilogue
    unsigned bytesPerCallSite = 8;
    unsigned bytesPerActionInvoke = 6; ///< jump/call to a shared action block
    /// Per-module reaction driver: entry/exit, input latching, event flag
    /// handling — the POLIS per-CFSM wrapper the paper blames for the
    /// async size penalty ("large RTOS overhead with such a small task
    /// granularity").
    unsigned bytesModuleOverhead = 450;
    unsigned bytesPerSignalGlue = 8;   ///< presence flag handling

    // --- data bytes ---
    unsigned bytesStateVar = 4;
    unsigned bytesPerSignalFlag = 1;

    // --- RTOS memory ---
    unsigned kernelCodeBytes = 4992;
    unsigned kernelDataBytes = 1200;
    unsigned perTaskCodeOverhead = 132; ///< task wrapper + event latch code
    unsigned perTaskTcbBytes = 56;
    unsigned perTaskStackBytes = 64;
    unsigned perConnectionBytes = 12;   ///< 1-place buffer bookkeeping
};

struct CodeSize {
    std::size_t codeBytes = 0;
    std::size_t dataBytes = 0;
};

/// Counts AST nodes (statements + expressions) — the code-size proxy for
/// data statements carried into the generated C.
std::size_t countStmtNodes(const ast::Stmt& s);
std::size_t countExprNodes(const ast::Expr& e);

class CostModel {
public:
    CostModel() = default;
    explicit CostModel(CostParams p) : p_(p) {}

    [[nodiscard]] const CostParams& params() const { return p_; }

    /// Cycles for one reaction, from the engine's counters.
    [[nodiscard]] std::uint64_t reactionCycles(const rt::ReactionResult& r) const;

    /// Code/data estimate for one compiled module (EFSM software synthesis).
    /// Inline data actions are counted once per decision-tree occurrence
    /// (the generator duplicates them per path); extracted data-loop
    /// functions are counted once plus a call site per occurrence.
    [[nodiscard]] CodeSize moduleSize(const efsm::Efsm& machine) const;

    /// Code/data estimate for the Reactive-C-style baseline: the IR is kept
    /// as an interpreted structure (one record per node) plus the dispatch
    /// interpreter — small code, but every reaction walks the structure.
    [[nodiscard]] CodeSize baselineSize(const ir::ReactiveProgram& program,
                                        const ModuleSema& sema) const;

private:
    CostParams p_;
};

} // namespace ecl::cost
