// Property-based tests.
//
// A seeded generator produces random pure-signal reactive programs from the
// ECL kernel grammar; properties checked over random stimuli:
//  * trace equivalence between the compiled EFSM and the Reactive-C-style
//    structural interpreter (two independent implementations of the
//    semantics),
//  * determinism (same stimulus, fresh engine => same trace),
//  * replay stability of the EFSM build (describe() is a pure function of
//    the source).
// Parameterized gtest sweeps (TEST_P) drive the seeds.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "src/core/compiler.h"

namespace {

using namespace ecl;

constexpr int kNumInputs = 3;
constexpr int kNumOutputs = 2;

/// Random reactive program over inputs i0..i2 / outputs o0..o1 and local
/// signals, built from the kernel constructs with bounded depth.
class ProgramGen {
public:
    explicit ProgramGen(unsigned seed) : rng_(seed) {}

    std::string generate()
    {
        locals_ = 0;
        std::ostringstream out;
        out << "module m (";
        for (int i = 0; i < kNumInputs; ++i)
            out << (i ? ", " : "") << "input pure i" << i;
        for (int o = 0; o < kNumOutputs; ++o)
            out << ", output pure o" << o;
        out << ")\n{\n";
        std::string body = haltingStmt(3);
        std::string decls;
        for (int l = 0; l < locals_; ++l)
            decls += "    signal pure l" + std::to_string(l) + ";\n";
        out << decls;
        // Wrap in a loop so traces are long; body always halts.
        out << "    while (1) {\n" << body << "    }\n}\n";
        return out.str();
    }

private:
    int pick(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng_); }

    std::string sig()
    {
        int k = pick(kNumInputs + locals_);
        if (k < kNumInputs) return "i" + std::to_string(k);
        return "l" + std::to_string(k - kNumInputs);
    }

    std::string sigExpr()
    {
        switch (pick(4)) {
        case 0: return sig();
        case 1: return "~" + sig();
        case 2: return sig() + " & " + sig();
        default: return sig() + " | " + sig();
        }
    }

    std::string emitTarget()
    {
        int k = pick(kNumOutputs + locals_);
        if (k < kNumOutputs) return "o" + std::to_string(k);
        return "l" + std::to_string(k - kNumOutputs);
    }

    /// A statement guaranteed to halt on every repeating path.
    std::string haltingStmt(int depth)
    {
        if (depth == 0) return "        await (" + sigExpr() + ");\n";
        switch (pick(6)) {
        case 0: return "        await (" + sigExpr() + ");\n";
        case 1:
            return haltingStmt(depth - 1) + "        emit (" + emitTarget() +
                   ");\n";
        case 2:
            return "        do {\n" + haltingStmt(depth - 1) +
                   "        halt ();\n        } abort (" + sigExpr() + ");\n";
        case 3:
            return "        do {\n" + haltingStmt(depth - 1) +
                   "        } suspend (" + sigExpr() + ");\n";
        case 4: {
            // Emitter-before-tester by construction: the first branch may
            // emit a fresh local, the second may test it.
            std::string fresh = "l" + std::to_string(locals_++);
            std::string a = "            { await (" + sigExpr() +
                            "); emit (" + fresh + "); }\n";
            std::string b = "            { do {\n" + haltingStmt(depth - 1) +
                            "            halt ();\n            } abort (" +
                            fresh + "); }\n";
            return "        par {\n" + a + b + "        }\n";
        }
        default:
            return "        present (" + sigExpr() + ") {\n" +
                   haltingStmt(depth - 1) + "        } else {\n" +
                   haltingStmt(depth - 1) + "        }\n";
        }
    }

    std::mt19937 rng_;
    int locals_ = 0;
};

std::string runTrace(rt::ReactiveEngine& eng, unsigned stimulusSeed,
                     int instants)
{
    std::mt19937 rng(stimulusSeed);
    std::string trace;
    eng.react(); // boot
    for (int t = 0; t < instants; ++t) {
        for (int i = 0; i < kNumInputs; ++i)
            if (rng() & 1) eng.setInput("i" + std::to_string(i));
        eng.react();
        for (int o = 0; o < kNumOutputs; ++o)
            trace += eng.outputPresent("o" + std::to_string(o)) ? '1' : '0';
        trace += '.';
    }
    return trace;
}

class RandomProgramTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProgramTest, EfsmMatchesStructuralInterpreter)
{
    unsigned seed = GetParam();
    ProgramGen gen(seed);
    std::string src = gen.generate();
    SCOPED_TRACE(src);

    std::shared_ptr<CompiledModule> mod;
    try {
        Compiler compiler(src);
        mod = compiler.compile("m");
    } catch (const EclError&) {
        GTEST_SKIP() << "generator produced a rejected program (causality)";
    }

    for (unsigned stim = 1; stim <= 3; ++stim) {
        auto efsm = mod->makeEngine();
        auto rc = mod->makeBaselineEngine();
        EXPECT_EQ(runTrace(*efsm, stim, 40), runTrace(*rc, stim, 40))
            << "program seed " << seed << " stimulus " << stim;
    }
}

TEST_P(RandomProgramTest, DeterministicReplay)
{
    unsigned seed = GetParam();
    ProgramGen gen(seed);
    std::string src = gen.generate();

    std::shared_ptr<CompiledModule> mod;
    try {
        Compiler compiler(src);
        mod = compiler.compile("m");
    } catch (const EclError&) {
        GTEST_SKIP();
    }
    auto e1 = mod->makeEngine();
    auto e2 = mod->makeEngine();
    EXPECT_EQ(runTrace(*e1, 7, 50), runTrace(*e2, 7, 50));
}

TEST_P(RandomProgramTest, BuildIsReproducible)
{
    unsigned seed = GetParam();
    ProgramGen gen1(seed);
    ProgramGen gen2(seed);
    std::string src1 = gen1.generate();
    std::string src2 = gen2.generate();
    ASSERT_EQ(src1, src2);
    try {
        Compiler c1(src1);
        Compiler c2(src2);
        EXPECT_EQ(c1.compile("m")->machine().describe(),
                  c2.compile("m")->machine().describe());
    } catch (const EclError&) {
        GTEST_SKIP();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(1u, 41u));

// --- exhaustive input sweeps (coherence/determinism per state) ---------------

class InputSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(InputSweepTest, EveryInputValuationHasExactlyOneReaction)
{
    // For a fixed control state, replaying any of the 2^3 input valuations
    // must give identical outputs on both engines and never throw.
    int valuation = GetParam();
    Compiler compiler(
        "module m (input pure i0, input pure i1, input pure i2,"
        " output pure o0, output pure o1) {"
        " while (1) {"
        "  par {"
        "    { await (i0 & ~i1); emit (o0); }"
        "    { await (i1 | i2); emit (o1); }"
        "  }"
        " } }");
    auto mod = compiler.compile("m");
    auto efsm = mod->makeEngine();
    auto rc = mod->makeBaselineEngine();
    efsm->react();
    rc->react();
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 3; ++i) {
            if ((valuation >> i) & 1) {
                efsm->setInput("i" + std::to_string(i));
                rc->setInput("i" + std::to_string(i));
            }
        }
        efsm->react();
        rc->react();
        ASSERT_EQ(efsm->outputPresent("o0"), rc->outputPresent("o0"));
        ASSERT_EQ(efsm->outputPresent("o1"), rc->outputPresent("o1"));
    }
}

INSTANTIATE_TEST_SUITE_P(AllValuations, InputSweepTest,
                         ::testing::Range(0, 8));

} // namespace
