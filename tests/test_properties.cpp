// Property-based tests.
//
// A seeded generator produces random pure-signal reactive programs from the
// ECL kernel grammar; properties checked over random stimuli:
//  * trace equivalence between the compiled EFSM and the Reactive-C-style
//    structural interpreter (two independent implementations of the
//    semantics),
//  * determinism (same stimulus, fresh engine => same trace),
//  * replay stability of the EFSM build (describe() is a pure function of
//    the source).
// Parameterized gtest sweeps (TEST_P) drive the seeds.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"

namespace {

using namespace ecl;

constexpr int kNumInputs = 3;
constexpr int kNumOutputs = 2;

/// Random reactive program over inputs i0..i2 / outputs o0..o1 and local
/// signals, built from the kernel constructs with bounded depth.
class ProgramGen {
public:
    explicit ProgramGen(unsigned seed) : rng_(seed) {}

    std::string generate()
    {
        locals_ = 0;
        std::ostringstream out;
        out << "module m (";
        for (int i = 0; i < kNumInputs; ++i)
            out << (i ? ", " : "") << "input pure i" << i;
        for (int o = 0; o < kNumOutputs; ++o)
            out << ", output pure o" << o;
        out << ")\n{\n";
        std::string body = haltingStmt(3);
        std::string decls;
        for (int l = 0; l < locals_; ++l)
            decls += "    signal pure l" + std::to_string(l) + ";\n";
        out << decls;
        // Wrap in a loop so traces are long; body always halts.
        out << "    while (1) {\n" << body << "    }\n}\n";
        return out.str();
    }

private:
    int pick(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng_); }

    std::string sig()
    {
        int k = pick(kNumInputs + locals_);
        if (k < kNumInputs) return "i" + std::to_string(k);
        return "l" + std::to_string(k - kNumInputs);
    }

    std::string sigExpr()
    {
        switch (pick(4)) {
        case 0: return sig();
        case 1: return "~" + sig();
        case 2: return sig() + " & " + sig();
        default: return sig() + " | " + sig();
        }
    }

    std::string emitTarget()
    {
        int k = pick(kNumOutputs + locals_);
        if (k < kNumOutputs) return "o" + std::to_string(k);
        return "l" + std::to_string(k - kNumOutputs);
    }

    /// A statement guaranteed to halt on every repeating path.
    std::string haltingStmt(int depth)
    {
        if (depth == 0) return "        await (" + sigExpr() + ");\n";
        switch (pick(6)) {
        case 0: return "        await (" + sigExpr() + ");\n";
        case 1:
            return haltingStmt(depth - 1) + "        emit (" + emitTarget() +
                   ");\n";
        case 2:
            return "        do {\n" + haltingStmt(depth - 1) +
                   "        halt ();\n        } abort (" + sigExpr() + ");\n";
        case 3:
            return "        do {\n" + haltingStmt(depth - 1) +
                   "        } suspend (" + sigExpr() + ");\n";
        case 4: {
            // Emitter-before-tester by construction: the first branch may
            // emit a fresh local, the second may test it.
            std::string fresh = "l" + std::to_string(locals_++);
            std::string a = "            { await (" + sigExpr() +
                            "); emit (" + fresh + "); }\n";
            std::string b = "            { do {\n" + haltingStmt(depth - 1) +
                            "            halt ();\n            } abort (" +
                            fresh + "); }\n";
            return "        par {\n" + a + b + "        }\n";
        }
        default:
            return "        present (" + sigExpr() + ") {\n" +
                   haltingStmt(depth - 1) + "        } else {\n" +
                   haltingStmt(depth - 1) + "        }\n";
        }
    }

    std::mt19937 rng_;
    int locals_ = 0;
};

std::string runTrace(rt::ReactiveEngine& eng, unsigned stimulusSeed,
                     int instants)
{
    std::mt19937 rng(stimulusSeed);
    std::string trace;
    eng.react(); // boot
    for (int t = 0; t < instants; ++t) {
        for (int i = 0; i < kNumInputs; ++i)
            if (rng() & 1) eng.setInput("i" + std::to_string(i));
        eng.react();
        for (int o = 0; o < kNumOutputs; ++o)
            trace += eng.outputPresent("o" + std::to_string(o)) ? '1' : '0';
        trace += '.';
    }
    return trace;
}

class RandomProgramTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProgramTest, EfsmMatchesStructuralInterpreter)
{
    unsigned seed = GetParam();
    ProgramGen gen(seed);
    std::string src = gen.generate();
    SCOPED_TRACE(src);

    std::shared_ptr<CompiledModule> mod;
    try {
        Compiler compiler(src);
        mod = compiler.compile("m");
    } catch (const EclError&) {
        GTEST_SKIP() << "generator produced a rejected program (causality)";
    }

    for (unsigned stim = 1; stim <= 3; ++stim) {
        auto efsm = mod->makeEngine();
        auto rc = mod->makeBaselineEngine();
        EXPECT_EQ(runTrace(*efsm, stim, 40), runTrace(*rc, stim, 40))
            << "program seed " << seed << " stimulus " << stim;
    }
}

TEST_P(RandomProgramTest, DeterministicReplay)
{
    unsigned seed = GetParam();
    ProgramGen gen(seed);
    std::string src = gen.generate();

    std::shared_ptr<CompiledModule> mod;
    try {
        Compiler compiler(src);
        mod = compiler.compile("m");
    } catch (const EclError&) {
        GTEST_SKIP();
    }
    auto e1 = mod->makeEngine();
    auto e2 = mod->makeEngine();
    EXPECT_EQ(runTrace(*e1, 7, 50), runTrace(*e2, 7, 50));
}

TEST_P(RandomProgramTest, FlatExecutionMatchesTreeWalk)
{
    // The flat-table/bytecode engine and the original unique_ptr tree walk
    // must produce identical traces from the same compiled machine.
    unsigned seed = GetParam();
    ProgramGen gen(seed);
    std::string src = gen.generate();
    SCOPED_TRACE(src);

    std::shared_ptr<CompiledModule> mod;
    try {
        Compiler compiler(src);
        mod = compiler.compile("m");
    } catch (const EclError&) {
        GTEST_SKIP();
    }
    ASSERT_TRUE(mod->hasFlatProgram());
    auto flat = mod->makeEngine(EngineKind::Flat);
    auto tree = mod->makeEngine(EngineKind::TreeWalk);
    ASSERT_TRUE(flat->usesFlatExecution());
    ASSERT_FALSE(tree->usesFlatExecution());
    EXPECT_EQ(runTrace(*flat, 11, 50), runTrace(*tree, 11, 50));
}

TEST_P(RandomProgramTest, BuildIsReproducible)
{
    unsigned seed = GetParam();
    ProgramGen gen1(seed);
    ProgramGen gen2(seed);
    std::string src1 = gen1.generate();
    std::string src2 = gen2.generate();
    ASSERT_EQ(src1, src2);
    try {
        Compiler c1(src1);
        Compiler c2(src2);
        EXPECT_EQ(c1.compile("m")->machine().describe(),
                  c2.compile("m")->machine().describe());
    } catch (const EclError&) {
        GTEST_SKIP();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(1u, 41u));

// --- exhaustive input sweeps (coherence/determinism per state) ---------------

class InputSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(InputSweepTest, EveryInputValuationHasExactlyOneReaction)
{
    // For a fixed control state, replaying any of the 2^3 input valuations
    // must give identical outputs on both engines and never throw.
    int valuation = GetParam();
    Compiler compiler(
        "module m (input pure i0, input pure i1, input pure i2,"
        " output pure o0, output pure o1) {"
        " while (1) {"
        "  par {"
        "    { await (i0 & ~i1); emit (o0); }"
        "    { await (i1 | i2); emit (o1); }"
        "  }"
        " } }");
    auto mod = compiler.compile("m");
    auto efsm = mod->makeEngine();
    auto rc = mod->makeBaselineEngine();
    efsm->react();
    rc->react();
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 3; ++i) {
            if ((valuation >> i) & 1) {
                efsm->setInput("i" + std::to_string(i));
                rc->setInput("i" + std::to_string(i));
            }
        }
        efsm->react();
        rc->react();
        ASSERT_EQ(efsm->outputPresent("o0"), rc->outputPresent("o0"));
        ASSERT_EQ(efsm->outputPresent("o1"), rc->outputPresent("o1"));
    }
}

INSTANTIATE_TEST_SUITE_P(AllValuations, InputSweepTest,
                         ::testing::Range(0, 8));

// --- paper-source differential sweeps (flat/bytecode vs oracles) -------------
//
// Seeded-random input sequences over every module of both paper sources,
// checking three engines instant by instant: the flat-table/bytecode
// SyncEngine against the tree-walking SyncEngine (same EFSM, different
// execution representation — outputs, termination, auto-resume AND exact
// ExecCounters must agree) and against the structural RcEngine (independent
// semantics — outputs, termination, auto-resume must agree).

struct PaperCase {
    const char* source; ///< "stack" or "buffer".
    const char* module;
};

void PrintTo(const PaperCase& c, std::ostream* os)
{
    *os << c.source << "/" << c.module;
}

class PaperSourceDifferentialTest
    : public ::testing::TestWithParam<PaperCase> {};

void expectCountersEqual(const ExecCounters& a, const ExecCounters& b,
                         int instant)
{
    EXPECT_EQ(a.exprOps, b.exprOps) << "instant " << instant;
    EXPECT_EQ(a.loads, b.loads) << "instant " << instant;
    EXPECT_EQ(a.stores, b.stores) << "instant " << instant;
    EXPECT_EQ(a.branches, b.branches) << "instant " << instant;
    EXPECT_EQ(a.calls, b.calls) << "instant " << instant;
    EXPECT_EQ(a.aggBytes, b.aggBytes) << "instant " << instant;
}

TEST_P(PaperSourceDifferentialTest, FlatMatchesTreeWalkAndStructuralOracle)
{
    const PaperCase& pc = GetParam();
    Compiler compiler(std::string(pc.source) == std::string("stack")
                          ? paper::protocolStackSource()
                          : paper::audioBufferSource());
    auto mod = compiler.compile(pc.module);
    ASSERT_TRUE(mod->hasFlatProgram()) << pc.module;
    const ModuleSema& sema = mod->moduleSema();

    for (unsigned seed = 1; seed <= 3; ++seed) {
        auto flat = mod->makeEngine(EngineKind::Flat);
        auto tree = mod->makeEngine(EngineKind::TreeWalk);
        auto rc = mod->makeBaselineEngine();
        ASSERT_TRUE(flat->usesFlatExecution());

        std::mt19937 rng(seed * 7919u + 17u);
        flat->react();
        tree->react();
        rc->react();
        for (int t = 0; t < 150; ++t) {
            // Random stimulus: each input present with probability 1/4;
            // valued inputs carry random bytes (small scalars, random
            // aggregate contents — exercises the union packet views).
            for (const SignalInfo& s : sema.signals) {
                if (s.dir != SignalDir::Input) continue;
                if ((rng() & 3u) != 0) continue; // present 1/4 of instants
                if (s.pure) {
                    flat->setInput(s.index);
                    tree->setInput(s.index);
                    rc->setInput(s.index);
                } else {
                    Value v(s.valueType);
                    for (std::size_t i = 0; i < v.size(); ++i)
                        v.data()[i] = static_cast<std::uint8_t>(rng());
                    flat->setInputValue(s.index, v);
                    tree->setInputValue(s.index, v);
                    rc->setInputValue(s.index, std::move(v));
                }
            }
            rt::ReactionResult rf = flat->react();
            rt::ReactionResult rt2 = tree->react();
            rt::ReactionResult rr = rc->react();

            for (const SignalInfo& s : sema.signals) {
                if (s.dir != SignalDir::Output) continue;
                ASSERT_EQ(flat->outputPresent(s.index),
                          rc->outputPresent(s.index))
                    << pc.module << " seed " << seed << " instant " << t
                    << " output " << s.name;
                ASSERT_EQ(flat->outputPresent(s.index),
                          tree->outputPresent(s.index))
                    << pc.module << " seed " << seed << " instant " << t
                    << " output " << s.name;
                if (!s.pure && flat->outputPresent(s.index)) {
                    ASSERT_TRUE(flat->outputValue(s.index) ==
                                rc->outputValue(s.index))
                        << pc.module << " seed " << seed << " instant " << t
                        << " value of " << s.name;
                    ASSERT_TRUE(flat->outputValue(s.index) ==
                                tree->outputValue(s.index))
                        << pc.module << " seed " << seed << " instant " << t
                        << " value of " << s.name;
                }
            }
            ASSERT_EQ(rf.terminated, rr.terminated)
                << pc.module << " seed " << seed << " instant " << t;
            ASSERT_EQ(flat->terminated(), rc->terminated())
                << pc.module << " seed " << seed << " instant " << t;
            ASSERT_EQ(flat->needsAutoResume(), rc->needsAutoResume())
                << pc.module << " seed " << seed << " instant " << t;
            ASSERT_EQ(flat->needsAutoResume(), tree->needsAutoResume())
                << pc.module << " seed " << seed << " instant " << t;

            // Flat vs tree walk share the EFSM: the engine-level counters
            // and the data-evaluator counters must match exactly (the
            // cost model consumes them).
            ASSERT_EQ(rf.treeTests, rt2.treeTests) << "instant " << t;
            ASSERT_EQ(rf.actionsRun, rt2.actionsRun) << "instant " << t;
            ASSERT_EQ(rf.emitsRun, rt2.emitsRun) << "instant " << t;
            ASSERT_EQ(rf.emittedOutputs, rt2.emittedOutputs)
                << "instant " << t;
            expectCountersEqual(rf.dataCounters, rt2.dataCounters, t);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperModules, PaperSourceDifferentialTest,
    ::testing::Values(PaperCase{"stack", "assemble"},
                      PaperCase{"stack", "checkcrc"},
                      PaperCase{"stack", "prochdr"},
                      PaperCase{"stack", "toplevel"},
                      PaperCase{"buffer", "producer"},
                      PaperCase{"buffer", "playback"},
                      PaperCase{"buffer", "blinker"},
                      PaperCase{"buffer", "buffer_top"}));

} // namespace
