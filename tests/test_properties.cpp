// Property-based tests.
//
// The seeded full-kernel-grammar generator (tests/ecl_program_gen.h)
// produces random reactive programs — valued signals, variables and data
// actions, trap/exit (reactive while + break), strong/weak preemption,
// parallel branches carrying data; properties checked over random
// stimuli:
//  * trace equivalence between the compiled EFSM and the Reactive-C-style
//    structural interpreter (two independent implementations of the
//    semantics),
//  * determinism (same stimulus, fresh engine => same trace),
//  * replay stability of the EFSM build (describe() is a pure function of
//    the source).
// Parameterized gtest sweeps (TEST_P) drive the seeds.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "tests/ecl_program_gen.h"

namespace {

using namespace ecl;
using test::ProgramGen;
using test::runTrace;

class RandomProgramTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProgramTest, EfsmMatchesStructuralInterpreter)
{
    unsigned seed = GetParam();
    ProgramGen gen(seed);
    std::string src = gen.generate();
    SCOPED_TRACE(src);

    std::shared_ptr<CompiledModule> mod;
    try {
        Compiler compiler(src);
        mod = compiler.compile("m");
    } catch (const EclError&) {
        GTEST_SKIP() << "generator produced a rejected program (causality)";
    }

    for (unsigned stim = 1; stim <= 3; ++stim) {
        auto efsm = mod->makeSyncEngine();
        auto rc = mod->makeBaselineEngine();
        EXPECT_EQ(runTrace(*efsm, stim, 40), runTrace(*rc, stim, 40))
            << "program seed " << seed << " stimulus " << stim;
    }
}

TEST_P(RandomProgramTest, DeterministicReplay)
{
    unsigned seed = GetParam();
    ProgramGen gen(seed);
    std::string src = gen.generate();

    std::shared_ptr<CompiledModule> mod;
    try {
        Compiler compiler(src);
        mod = compiler.compile("m");
    } catch (const EclError&) {
        GTEST_SKIP();
    }
    auto e1 = mod->makeSyncEngine();
    auto e2 = mod->makeSyncEngine();
    EXPECT_EQ(runTrace(*e1, 7, 50), runTrace(*e2, 7, 50));
}

TEST_P(RandomProgramTest, FlatExecutionMatchesTreeWalk)
{
    // The flat-table/bytecode engine and the original unique_ptr tree walk
    // must produce identical traces from the same compiled machine.
    unsigned seed = GetParam();
    ProgramGen gen(seed);
    std::string src = gen.generate();
    SCOPED_TRACE(src);

    std::shared_ptr<CompiledModule> mod;
    try {
        Compiler compiler(src);
        mod = compiler.compile("m");
    } catch (const EclError&) {
        GTEST_SKIP();
    }
    ASSERT_TRUE(mod->hasFlatProgram());
    auto flat = mod->makeSyncEngine(EngineKind::Flat);
    auto tree = mod->makeSyncEngine(EngineKind::TreeWalk);
    ASSERT_TRUE(flat->usesFlatExecution());
    ASSERT_FALSE(tree->usesFlatExecution());
    EXPECT_EQ(runTrace(*flat, 11, 50), runTrace(*tree, 11, 50));
}

TEST_P(RandomProgramTest, BuildIsReproducible)
{
    unsigned seed = GetParam();
    ProgramGen gen1(seed);
    ProgramGen gen2(seed);
    std::string src1 = gen1.generate();
    std::string src2 = gen2.generate();
    ASSERT_EQ(src1, src2);
    try {
        Compiler c1(src1);
        Compiler c2(src2);
        EXPECT_EQ(c1.compile("m")->machine().describe(),
                  c2.compile("m")->machine().describe());
    } catch (const EclError&) {
        GTEST_SKIP();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(1u, 41u));

// --- exhaustive input sweeps (coherence/determinism per state) ---------------

class InputSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(InputSweepTest, EveryInputValuationHasExactlyOneReaction)
{
    // For a fixed control state, replaying any of the 2^3 input valuations
    // must give identical outputs on both engines and never throw.
    int valuation = GetParam();
    Compiler compiler(
        "module m (input pure i0, input pure i1, input pure i2,"
        " output pure o0, output pure o1) {"
        " while (1) {"
        "  par {"
        "    { await (i0 & ~i1); emit (o0); }"
        "    { await (i1 | i2); emit (o1); }"
        "  }"
        " } }");
    auto mod = compiler.compile("m");
    auto efsm = mod->makeSyncEngine();
    auto rc = mod->makeBaselineEngine();
    efsm->react();
    rc->react();
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 3; ++i) {
            if ((valuation >> i) & 1) {
                efsm->setInput("i" + std::to_string(i));
                rc->setInput("i" + std::to_string(i));
            }
        }
        efsm->react();
        rc->react();
        ASSERT_EQ(efsm->outputPresent("o0"), rc->outputPresent("o0"));
        ASSERT_EQ(efsm->outputPresent("o1"), rc->outputPresent("o1"));
    }
}

INSTANTIATE_TEST_SUITE_P(AllValuations, InputSweepTest,
                         ::testing::Range(0, 8));

// --- paper-source differential sweeps (flat/bytecode vs oracles) -------------
//
// Seeded-random input sequences over every module of both paper sources,
// checking three engines instant by instant: the flat-table/bytecode
// SyncEngine against the tree-walking SyncEngine (same EFSM, different
// execution representation — outputs, termination, auto-resume AND exact
// ExecCounters must agree) and against the structural RcEngine (independent
// semantics — outputs, termination, auto-resume must agree). Runs at both
// -O0 (verbatim tables) and -O1 (chunk dedup + state minimization), the
// levels whose contract includes exact instruction-level ExecCounters;
// -O2's bytecode optimizer legitimately removes counted instructions and
// is differentially covered (outputs/termination/values) in
// tests/test_opt.cpp.

struct PaperCase {
    const char* source; ///< "stack" or "buffer".
    const char* module;
};

void PrintTo(const PaperCase& c, std::ostream* os)
{
    *os << c.source << "/" << c.module;
}

class PaperSourceDifferentialTest
    : public ::testing::TestWithParam<PaperCase> {};

void expectCountersEqual(const ExecCounters& a, const ExecCounters& b,
                         int instant)
{
    EXPECT_EQ(a.exprOps, b.exprOps) << "instant " << instant;
    EXPECT_EQ(a.loads, b.loads) << "instant " << instant;
    EXPECT_EQ(a.stores, b.stores) << "instant " << instant;
    EXPECT_EQ(a.branches, b.branches) << "instant " << instant;
    EXPECT_EQ(a.calls, b.calls) << "instant " << instant;
    EXPECT_EQ(a.aggBytes, b.aggBytes) << "instant " << instant;
}

TEST_P(PaperSourceDifferentialTest, FlatMatchesTreeWalkAndStructuralOracle)
{
    const PaperCase& pc = GetParam();
    Compiler compiler(std::string(pc.source) == std::string("stack")
                          ? paper::protocolStackSource()
                          : paper::audioBufferSource());
    for (int optLevel : {0, 1}) {
    SCOPED_TRACE("optLevel " + std::to_string(optLevel));
    CompileOptions copts;
    copts.optLevel = optLevel;
    auto mod = compiler.compile(pc.module, copts);
    ASSERT_TRUE(mod->hasFlatProgram()) << pc.module;
    const ModuleSema& sema = mod->moduleSema();

    for (unsigned seed = 1; seed <= 3; ++seed) {
        auto flat = mod->makeSyncEngine(EngineKind::Flat);
        auto tree = mod->makeSyncEngine(EngineKind::TreeWalk);
        auto rc = mod->makeBaselineEngine();
        ASSERT_TRUE(flat->usesFlatExecution());

        std::mt19937 rng(seed * 7919u + 17u);
        flat->react();
        tree->react();
        rc->react();
        for (int t = 0; t < 150; ++t) {
            // Random stimulus: each input present with probability 1/4;
            // valued inputs carry random bytes (small scalars, random
            // aggregate contents — exercises the union packet views).
            for (const SignalInfo& s : sema.signals) {
                if (s.dir != SignalDir::Input) continue;
                if ((rng() & 3u) != 0) continue; // present 1/4 of instants
                if (s.pure) {
                    flat->setInput(s.index);
                    tree->setInput(s.index);
                    rc->setInput(s.index);
                } else {
                    Value v(s.valueType);
                    for (std::size_t i = 0; i < v.size(); ++i)
                        v.data()[i] = static_cast<std::uint8_t>(rng());
                    flat->setInputValue(s.index, v);
                    tree->setInputValue(s.index, v);
                    rc->setInputValue(s.index, std::move(v));
                }
            }
            rt::ReactionResult rf = flat->react();
            rt::ReactionResult rt2 = tree->react();
            rt::ReactionResult rr = rc->react();

            for (const SignalInfo& s : sema.signals) {
                if (s.dir != SignalDir::Output) continue;
                ASSERT_EQ(flat->outputPresent(s.index),
                          rc->outputPresent(s.index))
                    << pc.module << " seed " << seed << " instant " << t
                    << " output " << s.name;
                ASSERT_EQ(flat->outputPresent(s.index),
                          tree->outputPresent(s.index))
                    << pc.module << " seed " << seed << " instant " << t
                    << " output " << s.name;
                if (!s.pure && flat->outputPresent(s.index)) {
                    ASSERT_TRUE(flat->outputValue(s.index) ==
                                rc->outputValue(s.index))
                        << pc.module << " seed " << seed << " instant " << t
                        << " value of " << s.name;
                    ASSERT_TRUE(flat->outputValue(s.index) ==
                                tree->outputValue(s.index))
                        << pc.module << " seed " << seed << " instant " << t
                        << " value of " << s.name;
                }
            }
            ASSERT_EQ(rf.terminated, rr.terminated)
                << pc.module << " seed " << seed << " instant " << t;
            ASSERT_EQ(flat->terminated(), rc->terminated())
                << pc.module << " seed " << seed << " instant " << t;
            ASSERT_EQ(flat->needsAutoResume(), rc->needsAutoResume())
                << pc.module << " seed " << seed << " instant " << t;
            ASSERT_EQ(flat->needsAutoResume(), tree->needsAutoResume())
                << pc.module << " seed " << seed << " instant " << t;

            // Flat vs tree walk share the EFSM: the engine-level counters
            // and the data-evaluator counters must match exactly (the
            // cost model consumes them).
            ASSERT_EQ(rf.treeTests, rt2.treeTests) << "instant " << t;
            ASSERT_EQ(rf.actionsRun, rt2.actionsRun) << "instant " << t;
            ASSERT_EQ(rf.emitsRun, rt2.emitsRun) << "instant " << t;
            ASSERT_EQ(rf.emittedOutputs, rt2.emittedOutputs)
                << "instant " << t;
            expectCountersEqual(rf.dataCounters, rt2.dataCounters, t);
        }
    }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperModules, PaperSourceDifferentialTest,
    ::testing::Values(PaperCase{"stack", "assemble"},
                      PaperCase{"stack", "checkcrc"},
                      PaperCase{"stack", "prochdr"},
                      PaperCase{"stack", "toplevel"},
                      PaperCase{"buffer", "producer"},
                      PaperCase{"buffer", "playback"},
                      PaperCase{"buffer", "blinker"},
                      PaperCase{"buffer", "buffer_top"}));

// --- batch multi-instance differential sweeps --------------------------------
//
// A BatchEngine running N instances of one compiled module over shared flat
// tables must be bit-exact with N independent SyncEngines: outputs,
// persistent signal values, termination, auto-resume AND exact ExecCounters
// per reacted instance, for every (instances, threads) combination. Two
// stepping contracts are proven separately:
//  * stepAll(): strict lockstep — every instance reacts every instant,
//    including empty instants (absence-triggered transitions included);
//  * step(): dirty-list scheduling — an instance reacts iff it has pending
//    inputs or auto-resume, and the schedule decision itself is pinned
//    against the oracle's auto-resume state.

struct BatchCase {
    const char* source; ///< "stack" or "buffer".
    const char* module;
    int instances;
    int threads;
    /// Post-flatten optimization level the module is compiled at. Batch
    /// and oracle engines share the same tables, so equality (counters
    /// included) must hold at every level — the default fast path (-O2)
    /// and the verbatim tables (-O0) are both swept.
    int optLevel = 2;
    /// Run the batch under EngineKind::Native (AOT reaction function on
    /// the shared arenas) against NativeEngine oracles. When the native
    /// backend is unavailable both sides fall back to the VM, so the
    /// differential stays meaningful either way.
    bool native = false;
};

void PrintTo(const BatchCase& c, std::ostream* os)
{
    *os << c.source << "/" << c.module << "/n" << c.instances << "/t"
        << c.threads << "/O" << c.optLevel << (c.native ? "/native" : "");
}

class BatchDifferentialTest : public ::testing::TestWithParam<BatchCase> {
protected:
    std::unique_ptr<rt::BatchEngine>
    makeBatch(const std::shared_ptr<CompiledModule>& mod, std::size_t n)
    {
        const BatchCase& bc = GetParam();
        return mod->makeBatchEngine(
            n, {.threads = bc.threads},
            bc.native ? EngineKind::Native : EngineKind::Flat);
    }

    std::unique_ptr<rt::ReactiveEngine>
    makeOracle(const std::shared_ptr<CompiledModule>& mod)
    {
        // Backend-matched oracle: Native batch vs NativeEngine, VM batch
        // vs SyncEngine — both fall back to the VM together.
        if (GetParam().native) return mod->makeEngine(EngineKind::Native);
        return mod->makeSyncEngine(EngineKind::Flat);
    }

    std::shared_ptr<CompiledModule> compileCase()
    {
        const BatchCase& bc = GetParam();
        Compiler compiler(std::string(bc.source) == std::string("stack")
                              ? paper::protocolStackSource()
                              : paper::audioBufferSource());
        CompileOptions copts;
        copts.optLevel = bc.optLevel;
        auto mod = compiler.compile(bc.module, copts);
        if (!mod->hasFlatProgram())
            ADD_FAILURE() << "no flat program for " << bc.module;
        return mod;
    }

    /// Instants scaled down as N grows so the sweep stays fast.
    int instantsFor(int instances) const
    {
        return instances >= 256 ? 10 : instances >= 7 ? 30 : 60;
    }

    /// Draws one instant's random inputs and applies them to the batch
    /// slot and/or the oracle engine (either may be null; the draw
    /// sequence is identical, so replaying from an rng copy reproduces the
    /// exact inputs). Returns true when any input was set.
    bool applyInputs(std::mt19937& rng, const ModuleSema& sema,
                     rt::BatchEngine* batch, std::size_t inst,
                     rt::ReactiveEngine* oracle)
    {
        bool any = false;
        for (const SignalInfo& s : sema.signals) {
            if (s.dir != SignalDir::Input) continue;
            if ((rng() & 3u) != 0) continue; // present 1/4 of instants
            any = true;
            if (s.pure) {
                if (batch) batch->setInput(inst, s.index);
                if (oracle) oracle->setInput(s.index);
            } else {
                Value v(s.valueType);
                for (std::size_t i = 0; i < v.size(); ++i)
                    v.data()[i] = static_cast<std::uint8_t>(rng());
                if (batch) batch->setInputValue(inst, s.index, v);
                if (oracle) oracle->setInputValue(s.index, std::move(v));
            }
        }
        return any;
    }

    /// Full per-instance equality after a reaction of both sides.
    void expectInstanceEqual(const ModuleSema& sema,
                             const rt::BatchEngine& batch, std::size_t inst,
                             const rt::ReactiveEngine& oracle,
                             const rt::ReactionResult& rb,
                             const rt::ReactionResult& ro, int instant)
    {
        for (const SignalInfo& s : sema.signals) {
            ASSERT_EQ(batch.outputPresent(inst, s.index),
                      oracle.outputPresent(s.index))
                << "inst " << inst << " instant " << instant << " signal "
                << s.name;
            if (!s.pure)
                ASSERT_TRUE(batch.outputValue(inst, s.index) ==
                            oracle.outputValue(s.index))
                    << "inst " << inst << " instant " << instant
                    << " value of " << s.name;
        }
        ASSERT_EQ(batch.terminated(inst), oracle.terminated())
            << "inst " << inst << " instant " << instant;
        ASSERT_EQ(batch.needsAutoResume(inst), oracle.needsAutoResume())
            << "inst " << inst << " instant " << instant;
        ASSERT_EQ(rb.terminated, ro.terminated)
            << "inst " << inst << " instant " << instant;
        ASSERT_EQ(rb.treeTests, ro.treeTests)
            << "inst " << inst << " instant " << instant;
        ASSERT_EQ(rb.actionsRun, ro.actionsRun)
            << "inst " << inst << " instant " << instant;
        ASSERT_EQ(rb.emitsRun, ro.emitsRun)
            << "inst " << inst << " instant " << instant;
        ASSERT_EQ(rb.emittedOutputs, ro.emittedOutputs)
            << "inst " << inst << " instant " << instant;
        expectCountersEqual(rb.dataCounters, ro.dataCounters, instant);
    }
};

TEST_P(BatchDifferentialTest, LockstepMatchesIndependentSyncEngines)
{
    const BatchCase& bc = GetParam();
    auto mod = compileCase();
    ASSERT_TRUE(mod->hasFlatProgram());
    const ModuleSema& sema = mod->moduleSema();
    const auto n = static_cast<std::size_t>(bc.instances);

    auto batch = makeBatch(mod, n);
    ASSERT_EQ(batch->threads(), bc.threads);
    std::vector<std::unique_ptr<rt::ReactiveEngine>> oracles;
    std::vector<std::mt19937> rngs;
    for (std::size_t i = 0; i < n; ++i) {
        oracles.push_back(makeOracle(mod));
        rngs.emplace_back(static_cast<unsigned>(1000003 * i + 17));
    }
    // Batch and oracle must have resolved to the same backend (shared
    // memoized native module: both succeed or both fall back).
    ASSERT_STREQ(batch->backendName(), oracles[0]->backendName());

    // Boot instant: everyone reacts with no inputs.
    ASSERT_EQ(batch->stepAll(), n);
    for (std::size_t i = 0; i < n; ++i) {
        rt::ReactionResult ro = oracles[i]->react();
        expectInstanceEqual(sema, *batch, i, *oracles[i],
                            batch->lastResult(i), ro, -1);
    }

    const int instants = instantsFor(bc.instances);
    std::vector<rt::ReactionResult> oracleResults(n);
    for (int t = 0; t < instants; ++t) {
        for (std::size_t i = 0; i < n; ++i)
            applyInputs(rngs[i], sema, batch.get(), i, oracles[i].get());
        ASSERT_EQ(batch->stepAll(), n);
        for (std::size_t i = 0; i < n; ++i)
            oracleResults[i] = oracles[i]->react();
        for (std::size_t i = 0; i < n; ++i)
            expectInstanceEqual(sema, *batch, i, *oracles[i],
                                batch->lastResult(i), oracleResults[i], t);

        // The merged event stream is the oracle outputs in ascending
        // instance order — identical for every thread count.
        std::size_t cursor = 0;
        const auto& events = batch->lastStepEvents();
        for (std::size_t i = 0; i < n; ++i)
            for (int sig : oracleResults[i].emittedOutputs) {
                ASSERT_LT(cursor, events.size()) << "instant " << t;
                ASSERT_EQ(events[cursor].instance, i) << "instant " << t;
                ASSERT_EQ(events[cursor].signal, sig) << "instant " << t;
                ++cursor;
            }
        ASSERT_EQ(cursor, events.size()) << "instant " << t;
    }
}

TEST_P(BatchDifferentialTest, DirtySchedulingMatchesEventDrivenOracle)
{
    const BatchCase& bc = GetParam();
    auto mod = compileCase();
    ASSERT_TRUE(mod->hasFlatProgram());
    const ModuleSema& sema = mod->moduleSema();
    const auto n = static_cast<std::size_t>(bc.instances);

    auto batch = makeBatch(mod, n);
    std::vector<std::unique_ptr<rt::ReactiveEngine>> oracles;
    std::vector<std::mt19937> rngs;
    for (std::size_t i = 0; i < n; ++i) {
        oracles.push_back(makeOracle(mod));
        rngs.emplace_back(static_cast<unsigned>(2000003 * i + 29));
    }
    ASSERT_STREQ(batch->backendName(), oracles[0]->backendName());

    // Fresh instances are dirty: the first step() boots all of them.
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_TRUE(batch->pendingDirty(i));
    ASSERT_EQ(batch->step(), n);
    for (std::size_t i = 0; i < n; ++i) {
        rt::ReactionResult ro = oracles[i]->react();
        expectInstanceEqual(sema, *batch, i, *oracles[i],
                            batch->lastResult(i), ro, -1);
    }

    const int instants = instantsFor(bc.instances);
    std::vector<bool> expectReact(n);
    for (int t = 0; t < instants; ++t) {
        std::size_t expected = 0;
        for (std::size_t i = 0; i < n; ++i) {
            // Before inputs, the only reason to be queued is auto-resume —
            // pinned against the oracle's own state.
            bool preDirty = batch->pendingDirty(i);
            ASSERT_EQ(preDirty, oracles[i]->needsAutoResume())
                << "inst " << i << " instant " << t;
            std::mt19937 replay = rngs[i]; // same draws for the oracle
            bool any = applyInputs(rngs[i], sema, batch.get(), i, nullptr);
            expectReact[i] = any || preDirty;
            if (!expectReact[i]) continue;
            ++expected;
            applyInputs(replay, sema, nullptr, i, oracles[i].get());
        }
        ASSERT_EQ(batch->step(), expected) << "instant " << t;
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(batch->reactedLastStep(i), expectReact[i])
                << "inst " << i << " instant " << t;
            if (!expectReact[i]) continue;
            rt::ReactionResult ro = oracles[i]->react();
            expectInstanceEqual(sema, *batch, i, *oracles[i],
                                batch->lastResult(i), ro, t);
        }
    }
}

TEST_P(BatchDifferentialTest, MixedPopulationDirtyScheduling)
{
    // Mixed sparse/dense populations: instance i's traffic class is
    // i % 4 — 0 = dense (inputs every instant), 1 = bursty (5 instants
    // on, 15 off), 2 = sparse (one instant in 17), 3 = idle (boot only).
    // The dirty list must react exactly the active-or-resuming subset
    // each step and leave idle instances untouched, with every reacted
    // instance still bit-exact against its event-driven oracle.
    const BatchCase& bc = GetParam();
    auto mod = compileCase();
    ASSERT_TRUE(mod->hasFlatProgram());
    const ModuleSema& sema = mod->moduleSema();
    const auto n = static_cast<std::size_t>(bc.instances);

    auto batch = makeBatch(mod, n);
    std::vector<std::unique_ptr<rt::ReactiveEngine>> oracles;
    std::vector<std::mt19937> rngs;
    for (std::size_t i = 0; i < n; ++i) {
        oracles.push_back(makeOracle(mod));
        rngs.emplace_back(static_cast<unsigned>(3000017 * i + 41));
    }
    ASSERT_STREQ(batch->backendName(), oracles[0]->backendName());

    ASSERT_EQ(batch->step(), n); // boot
    for (std::size_t i = 0; i < n; ++i) {
        rt::ReactionResult ro = oracles[i]->react();
        expectInstanceEqual(sema, *batch, i, *oracles[i],
                            batch->lastResult(i), ro, -1);
    }

    auto classActive = [](std::size_t i, int t) {
        switch (i % 4) {
        case 0: return true;                      // dense
        case 1: return t % 20 < 5;                // bursty
        case 2: return t % 17 == 0;               // sparse
        default: return false;                    // idle
        }
    };

    const int instants = instantsFor(bc.instances);
    std::vector<bool> expectReact(n);
    for (int t = 0; t < instants; ++t) {
        std::size_t expected = 0;
        for (std::size_t i = 0; i < n; ++i) {
            bool preDirty = batch->pendingDirty(i);
            ASSERT_EQ(preDirty, oracles[i]->needsAutoResume())
                << "inst " << i << " instant " << t;
            bool any = false;
            if (classActive(i, t)) {
                std::mt19937 replay = rngs[i];
                any = applyInputs(rngs[i], sema, batch.get(), i, nullptr);
                if (any) applyInputs(replay, sema, nullptr, i,
                                     oracles[i].get());
            }
            expectReact[i] = any || preDirty;
            if (expectReact[i]) ++expected;
        }
        ASSERT_EQ(batch->step(), expected) << "instant " << t;
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(batch->reactedLastStep(i), expectReact[i])
                << "inst " << i << " instant " << t;
            if (!expectReact[i]) continue;
            rt::ReactionResult ro = oracles[i]->react();
            expectInstanceEqual(sema, *batch, i, *oracles[i],
                                batch->lastResult(i), ro, t);
        }
    }

    // Idle instances really were left alone: still in their post-boot
    // packed state unless auto-resume kept them live.
    for (std::size_t i = 3; i < n; i += 4)
        ASSERT_EQ(batch->packInstanceState(i),
                  oracles[i]->packState())
            << "idle inst " << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperModules, BatchDifferentialTest,
    ::testing::Values(BatchCase{"stack", "assemble", 1, 1},
                      BatchCase{"stack", "assemble", 7, 1},
                      BatchCase{"stack", "assemble", 7, 4},
                      BatchCase{"stack", "assemble", 256, 4},
                      BatchCase{"stack", "checkcrc", 7, 1},
                      BatchCase{"stack", "checkcrc", 7, 4},
                      BatchCase{"stack", "prochdr", 7, 1},
                      BatchCase{"stack", "prochdr", 7, 4},
                      BatchCase{"stack", "toplevel", 1, 1},
                      BatchCase{"stack", "toplevel", 7, 1},
                      BatchCase{"stack", "toplevel", 7, 4},
                      BatchCase{"stack", "toplevel", 256, 1},
                      BatchCase{"stack", "toplevel", 256, 4},
                      BatchCase{"buffer", "producer", 7, 1},
                      BatchCase{"buffer", "producer", 7, 4},
                      BatchCase{"buffer", "playback", 7, 1},
                      BatchCase{"buffer", "playback", 7, 4},
                      BatchCase{"buffer", "blinker", 1, 1},
                      BatchCase{"buffer", "blinker", 256, 4},
                      BatchCase{"buffer", "buffer_top", 7, 1},
                      BatchCase{"buffer", "buffer_top", 7, 4},
                      BatchCase{"buffer", "buffer_top", 256, 4},
                      // Verbatim -O0 tables (default cases above run on
                      // the optimized -O2 fast path).
                      BatchCase{"stack", "assemble", 7, 4, 0},
                      BatchCase{"stack", "toplevel", 7, 1, 0},
                      BatchCase{"stack", "toplevel", 256, 4, 0},
                      BatchCase{"buffer", "producer", 7, 4, 0},
                      BatchCase{"buffer", "buffer_top", 7, 4, 0}));

// EngineKind::Native sweep: the AOT reaction function on the batch
// arenas vs NativeEngine oracles (VM fallback on both sides when no host
// compiler is available), across thread counts and both schedulers.
INSTANTIATE_TEST_SUITE_P(
    NativeBackend, BatchDifferentialTest,
    ::testing::Values(
        BatchCase{"stack", "assemble", 7, 1, 2, true},
        BatchCase{"stack", "assemble", 7, 4, 2, true},
        BatchCase{"stack", "toplevel", 1, 1, 2, true},
        BatchCase{"stack", "toplevel", 7, 4, 2, true},
        BatchCase{"stack", "toplevel", 256, 4, 2, true},
        BatchCase{"stack", "checkcrc", 7, 2, 2, true},
        BatchCase{"buffer", "producer", 7, 4, 2, true},
        BatchCase{"buffer", "playback", 7, 2, 2, true},
        BatchCase{"buffer", "buffer_top", 7, 1, 2, true},
        BatchCase{"buffer", "buffer_top", 256, 4, 2, true}));

} // namespace
