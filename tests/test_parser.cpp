// Parser unit tests: expression precedence, declarations, reactive
// statements, module syntax, error reporting.
#include <gtest/gtest.h>

#include "src/frontend/ast_printer.h"
#include "src/frontend/lexer.h"
#include "src/frontend/parser.h"

namespace {

using namespace ecl;
using namespace ecl::ast;

Program parseOk(const std::string& src)
{
    Diagnostics diags;
    return parseEcl(src, diags);
}

std::string parseExprText(const std::string& src)
{
    Diagnostics diags;
    Parser p(lex(src, diags), diags);
    ExprPtr e = p.parseExpressionOnly();
    return printExpr(*e);
}

void expectParseError(const std::string& src, const std::string& fragment)
{
    Diagnostics diags;
    EXPECT_THROW(
        {
            try {
                parseEcl(src, diags);
            } catch (const EclError& e) {
                EXPECT_NE(std::string(e.what()).find(fragment),
                          std::string::npos)
                    << e.what();
                throw;
            }
        },
        EclError);
}

// --- expressions ------------------------------------------------------------

TEST(ParserExprTest, Precedence)
{
    EXPECT_EQ(parseExprText("1 + 2 * 3"), "(1 + (2 * 3))");
    EXPECT_EQ(parseExprText("1 << 2 + 3"), "(1 << (2 + 3))");
    EXPECT_EQ(parseExprText("a == b & c"), "((a == b) & c)");
    EXPECT_EQ(parseExprText("a | b ^ c & d"), "(a | (b ^ (c & d)))");
    EXPECT_EQ(parseExprText("a && b || c"), "((a && b) || c)");
    EXPECT_EQ(parseExprText("!a && ~b"), "((!a) && (~b))");
}

TEST(ParserExprTest, AssignmentRightAssociative)
{
    EXPECT_EQ(parseExprText("a = b = c"), "a = b = c");
    EXPECT_EQ(parseExprText("a += b * 2"), "a += (b * 2)");
}

TEST(ParserExprTest, Conditional)
{
    EXPECT_EQ(parseExprText("a ? b : c ? d : e"), "(a ? b : (c ? d : e))");
}

TEST(ParserExprTest, PostfixChains)
{
    EXPECT_EQ(parseExprText("a.b[1].c"), "a.b[1].c");
    EXPECT_EQ(parseExprText("m[i][j]"), "m[i][j]");
    EXPECT_EQ(parseExprText("x++"), "(x++)");
    EXPECT_EQ(parseExprText("--x"), "(--x)");
}

TEST(ParserExprTest, Calls)
{
    EXPECT_EQ(parseExprText("f()"), "f()");
    EXPECT_EQ(parseExprText("f(1, a + 2)"), "f(1, (a + 2))");
}

TEST(ParserExprTest, SizeofExpr)
{
    EXPECT_EQ(parseExprText("sizeof(x + 1)"), "__sizeof_expr((x + 1))");
}

TEST(ParserExprTest, ShiftFromPaperCrc)
{
    EXPECT_EQ(parseExprText("(crc ^ b) << 1"), "((crc ^ b) << 1)");
}

// --- declarations -----------------------------------------------------------

TEST(ParserDeclTest, TypedefScalar)
{
    Program p = parseOk("typedef unsigned char byte;");
    ASSERT_EQ(p.decls.size(), 1u);
    const auto& td = static_cast<const TypedefDecl&>(*p.decls[0]);
    EXPECT_EQ(td.name, "byte");
    EXPECT_EQ(td.underlying.name, "unsigned char");
}

TEST(ParserDeclTest, TypedefStructWithArrays)
{
    Program p = parseOk("typedef struct { unsigned char h[6]; int n; } hdr_t;");
    const auto& td = static_cast<const TypedefDecl&>(*p.decls[0]);
    ASSERT_NE(td.aggregate, nullptr);
    EXPECT_FALSE(td.aggregate->isUnion);
    ASSERT_EQ(td.aggregate->fields.size(), 2u);
    EXPECT_EQ(td.aggregate->fields[0].decl.name, "h");
    EXPECT_EQ(td.aggregate->fields[0].decl.arrayDims.size(), 1u);
}

TEST(ParserDeclTest, TypedefUnion)
{
    Program p = parseOk("typedef struct { int a; } v1;\n"
                        "typedef struct { int b; } v2;\n"
                        "typedef union { v1 raw; v2 cooked; } u_t;");
    const auto& td = static_cast<const TypedefDecl&>(*p.decls[2]);
    ASSERT_NE(td.aggregate, nullptr);
    EXPECT_TRUE(td.aggregate->isUnion);
}

TEST(ParserDeclTest, TaggedStruct)
{
    Program p = parseOk("struct point { int x; int y; };\n"
                        "int dist(struct point p) { return p.x + p.y; }");
    EXPECT_EQ(p.decls[0]->kind, DeclKind::Aggregate);
    EXPECT_EQ(p.decls[1]->kind, DeclKind::Function);
}

TEST(ParserDeclTest, Function)
{
    Program p = parseOk("int add(int a, int b) { return a + b; }");
    const auto& fn = static_cast<const FunctionDecl&>(*p.decls[0]);
    EXPECT_EQ(fn.name, "add");
    ASSERT_EQ(fn.params.size(), 2u);
    EXPECT_EQ(fn.params[1].name, "b");
}

TEST(ParserDeclTest, FunctionVoidParams)
{
    Program p = parseOk("int f(void) { return 1; }");
    const auto& fn = static_cast<const FunctionDecl&>(*p.decls[0]);
    EXPECT_TRUE(fn.params.empty());
}

TEST(ParserDeclTest, ConstGlobal)
{
    Program p = parseOk("const int LIMIT = 4 * 8;");
    const auto& gv = static_cast<const GlobalVarDecl&>(*p.decls[0]);
    EXPECT_TRUE(gv.isConst);
    EXPECT_EQ(gv.decls[0].name, "LIMIT");
}

// --- modules and reactive statements ---------------------------------------

TEST(ParserModuleTest, SignatureForms)
{
    Program p = parseOk(
        "typedef unsigned char byte;\n"
        "module m (input pure reset, input byte b, output bool ok) { halt(); }");
    const ModuleDecl* m = p.findModule("m");
    ASSERT_NE(m, nullptr);
    ASSERT_EQ(m->params.size(), 3u);
    EXPECT_EQ(m->params[0].dir, ast::SignalDir::Input);
    EXPECT_TRUE(m->params[0].pure);
    EXPECT_EQ(m->params[1].type.name, "byte");
    EXPECT_EQ(m->params[2].dir, ast::SignalDir::Output);
    EXPECT_EQ(m->params[2].type.name, "bool");
}

TEST(ParserModuleTest, ReactiveStatements)
{
    Program p = parseOk(R"(
module m (input pure a, input pure b, output pure o)
{
    signal pure s1, s2;
    await (a & ~b);
    await ();
    emit (o);
    present (a | b) { emit (s1); } else { emit (s2); }
    do { halt(); } abort (a);
    do { halt(); } weak_abort (a & b) handle { emit (o); }
    do { halt(); } suspend (b);
    par {
        { await (a); }
        { await (b); }
    }
})");
    const ModuleDecl* m = p.findModule("m");
    ASSERT_NE(m, nullptr);
    const auto& body = m->body->body;
    EXPECT_EQ(body[0]->kind, StmtKind::SignalDecl);
    EXPECT_EQ(body[1]->kind, StmtKind::Await);
    EXPECT_EQ(body[2]->kind, StmtKind::Await);
    EXPECT_EQ(static_cast<const AwaitStmt&>(*body[2]).cond, nullptr);
    EXPECT_EQ(body[3]->kind, StmtKind::Emit);
    EXPECT_EQ(body[4]->kind, StmtKind::Present);
    EXPECT_EQ(body[5]->kind, StmtKind::Abort);
    EXPECT_FALSE(static_cast<const AbortStmt&>(*body[5]).weak);
    const auto& weak = static_cast<const AbortStmt&>(*body[6]);
    EXPECT_TRUE(weak.weak);
    EXPECT_NE(weak.handler, nullptr);
    EXPECT_EQ(body[7]->kind, StmtKind::Suspend);
    EXPECT_EQ(body[8]->kind, StmtKind::Par);
    EXPECT_EQ(static_cast<const ParStmt&>(*body[8]).branches.size(), 2u);
}

TEST(ParserModuleTest, DoWhileStillWorks)
{
    Program p = parseOk("module m (input pure a) { int i;\n"
                        "do { i = i + 1; } while (i < 3); halt(); }");
    const ModuleDecl* m = p.findModule("m");
    EXPECT_EQ(m->body->body[1]->kind, StmtKind::DoWhile);
}

TEST(ParserModuleTest, EmitValued)
{
    Program p = parseOk("module m (output int o) { emit_v (o, 1 + 2); }");
    const auto& e = static_cast<const EmitStmt&>(*p.findModule("m")->body->body[0]);
    EXPECT_EQ(e.signal, "o");
    ASSERT_NE(e.value, nullptr);
}

TEST(ParserModuleTest, ForCommaInitFromPaper)
{
    Program p = parseOk("module m (input pure a) { int i; int crc;\n"
                        "while (1) { await (a);\n"
                        "for (i = 0, crc = 0; i < 8; i++) { crc = crc + i; } } }");
    SUCCEED();
}

TEST(ParserModuleTest, SigExprPrecedence)
{
    Program p = parseOk(
        "module m (input pure a, input pure b, input pure c) {"
        " await (a | b & ~c); }");
    const auto& aw = static_cast<const AwaitStmt&>(*p.findModule("m")->body->body[0]);
    // Or at top, And binds tighter.
    EXPECT_EQ(aw.cond->kind, SigExprKind::Or);
    EXPECT_EQ(aw.cond->rhs->kind, SigExprKind::And);
}

TEST(ParserModuleTest, PaperIfThenTolerated)
{
    // Figure 1 of the paper writes `if (A) then emit(OUT);`.
    Program p = parseOk("module m (input bool A, output pure OUT) {"
                        " present (A) { if (A) then emit(OUT); } halt(); }");
    SUCCEED();
}

// --- errors -----------------------------------------------------------------

TEST(ParserErrorTest, MissingSemicolon)
{
    expectParseError("module m (input pure a) { emit (a) }", "';'");
}

TEST(ParserErrorTest, DoWithoutTail)
{
    expectParseError("module m (input pure a) { do { halt(); } }",
                     "expected 'while', 'abort'");
}

TEST(ParserErrorTest, BadModuleParam)
{
    expectParseError("module m (int x) { halt(); }", "input");
}

TEST(ParserErrorTest, UnclosedBlock)
{
    expectParseError("module m (input pure a) { halt();", "'}'");
}

TEST(ParserErrorTest, AwaitNeedsParens)
{
    expectParseError("module m (input pure a) { await a; }", "'('");
}

// --- printer round trip -----------------------------------------------------

TEST(ParserPrintTest, RoundTripStable)
{
    const char* src = R"(typedef unsigned char byte;

module m (input pure r, input byte b, output byte o)
{
    int n;
    while (1) {
        do {
            await (b);
            n = (n + b) * 2;
            emit_v (o, n);
        } abort (r);
    }
}
)";
    Program p1 = parseOk(src);
    std::string printed1 = printProgram(p1);
    Program p2 = parseOk(printed1);
    std::string printed2 = printProgram(p2);
    EXPECT_EQ(printed1, printed2); // print . parse . print is a fixpoint
}

} // namespace
