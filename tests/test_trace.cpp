// TraceRecorder tests: VCD structure and textual timelines.
#include <gtest/gtest.h>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/runtime/trace.h"

namespace {

using namespace ecl;

TEST(TraceTest, TimelineShowsBlinkerPattern)
{
    Compiler compiler(paper::audioBufferSource());
    auto mod = compiler.compile("blinker");
    auto eng = mod->makeEngine();
    rt::TraceRecorder trace(mod->moduleSema(), {"tick", "led_on", "led_off"});
    eng->react();
    for (int t = 0; t < 10; ++t) {
        eng->setInput("tick");
        eng->react();
        trace.sample(*eng);
    }
    EXPECT_EQ(trace.instants(), 10u);
    std::string tl = trace.toTimeline();
    EXPECT_NE(tl.find("tick    ##########"), std::string::npos);
    EXPECT_NE(tl.find("led_on  #....#...."), std::string::npos);
    EXPECT_NE(tl.find("led_off ..#....#.."), std::string::npos);
}

TEST(TraceTest, VcdWellFormed)
{
    Compiler compiler(paper::audioBufferSource());
    auto mod = compiler.compile("blinker");
    auto eng = mod->makeEngine();
    rt::TraceRecorder trace(mod->moduleSema());
    eng->react();
    for (int t = 0; t < 6; ++t) {
        eng->setInput("tick");
        eng->react();
        trace.sample(*eng);
    }
    std::string vcd = trace.toVcd("blinker");
    EXPECT_NE(vcd.find("$timescale"), std::string::npos);
    EXPECT_NE(vcd.find("$scope module blinker $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 1 ! reset $end"), std::string::npos);
    EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(vcd.find("#0"), std::string::npos);
    EXPECT_NE(vcd.find("#6"), std::string::npos);
    // Changes only on edges: led_on toggles at instants 0,1 then 5,6.
    std::size_t ones = 0;
    for (std::size_t pos = vcd.find("\n1"); pos != std::string::npos;
         pos = vcd.find("\n1", pos + 1))
        ++ones;
    EXPECT_GE(ones, 2u);
}

TEST(TraceTest, ValuedSignalTracked)
{
    Compiler compiler("module m (input int v, output int o) {"
                      " while (1) { await (v); emit_v (o, v * 2); } }");
    auto mod = compiler.compile("m");
    auto eng = mod->makeEngine();
    rt::TraceRecorder trace(mod->moduleSema(), {"o"});
    eng->react();
    for (int t = 1; t <= 3; ++t) {
        eng->setInputScalar("v", t);
        eng->react();
        trace.sample(*eng);
    }
    std::string vcd = trace.toVcd("m");
    EXPECT_NE(vcd.find("o_val"), std::string::npos);
    EXPECT_NE(vcd.find("b110 "), std::string::npos); // 3*2 = 6
}

TEST(TraceTest, RawSamplingForExternalEngines)
{
    Compiler compiler("module m (input pure a, output pure o) { halt(); }");
    auto mod = compiler.compile("m");
    rt::TraceRecorder trace(mod->moduleSema());
    trace.sampleRaw({true, false}, {});
    trace.sampleRaw({false, true}, {});
    EXPECT_EQ(trace.instants(), 2u);
    std::string tl = trace.toTimeline();
    EXPECT_NE(tl.find("a #."), std::string::npos);
    EXPECT_NE(tl.find("o .#"), std::string::npos);
}

} // namespace
