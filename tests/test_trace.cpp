// Trace tests: VCD/timeline recording, the input-stream record/replay
// format, and the bit-exact replay contract across engines and -O levels.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/corpus/corpus.h"
#include "src/runtime/trace.h"

namespace {

using namespace ecl;

TEST(TraceTest, TimelineShowsBlinkerPattern)
{
    Compiler compiler(paper::audioBufferSource());
    auto mod = compiler.compile("blinker");
    auto eng = mod->makeSyncEngine();
    rt::TraceRecorder trace(mod->moduleSema(), {"tick", "led_on", "led_off"});
    eng->react();
    for (int t = 0; t < 10; ++t) {
        eng->setInput("tick");
        eng->react();
        trace.sample(*eng);
    }
    EXPECT_EQ(trace.instants(), 10u);
    std::string tl = trace.toTimeline();
    EXPECT_NE(tl.find("tick    ##########"), std::string::npos);
    EXPECT_NE(tl.find("led_on  #....#...."), std::string::npos);
    EXPECT_NE(tl.find("led_off ..#....#.."), std::string::npos);
}

TEST(TraceTest, VcdWellFormed)
{
    Compiler compiler(paper::audioBufferSource());
    auto mod = compiler.compile("blinker");
    auto eng = mod->makeSyncEngine();
    rt::TraceRecorder trace(mod->moduleSema());
    eng->react();
    for (int t = 0; t < 6; ++t) {
        eng->setInput("tick");
        eng->react();
        trace.sample(*eng);
    }
    std::string vcd = trace.toVcd("blinker");
    EXPECT_NE(vcd.find("$timescale"), std::string::npos);
    EXPECT_NE(vcd.find("$scope module blinker $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 1 ! reset $end"), std::string::npos);
    EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(vcd.find("#0"), std::string::npos);
    EXPECT_NE(vcd.find("#6"), std::string::npos);
    // Changes only on edges: led_on toggles at instants 0,1 then 5,6.
    std::size_t ones = 0;
    for (std::size_t pos = vcd.find("\n1"); pos != std::string::npos;
         pos = vcd.find("\n1", pos + 1))
        ++ones;
    EXPECT_GE(ones, 2u);
}

TEST(TraceTest, ValuedSignalTracked)
{
    Compiler compiler("module m (input int v, output int o) {"
                      " while (1) { await (v); emit_v (o, v * 2); } }");
    auto mod = compiler.compile("m");
    auto eng = mod->makeSyncEngine();
    rt::TraceRecorder trace(mod->moduleSema(), {"o"});
    eng->react();
    for (int t = 1; t <= 3; ++t) {
        eng->setInputScalar("v", t);
        eng->react();
        trace.sample(*eng);
    }
    std::string vcd = trace.toVcd("m");
    EXPECT_NE(vcd.find("o_val"), std::string::npos);
    EXPECT_NE(vcd.find("b110 "), std::string::npos); // 3*2 = 6
}

TEST(TraceTest, RawSamplingForExternalEngines)
{
    Compiler compiler("module m (input pure a, output pure o) { halt(); }");
    auto mod = compiler.compile("m");
    rt::TraceRecorder trace(mod->moduleSema());
    trace.sampleRaw({true, false}, {});
    trace.sampleRaw({false, true}, {});
    EXPECT_EQ(trace.instants(), 2u);
    std::string tl = trace.toTimeline();
    EXPECT_NE(tl.find("a #."), std::string::npos);
    EXPECT_NE(tl.find("o .#"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Input-stream record/replay
// ---------------------------------------------------------------------------

struct PaperModule {
    const char* paper;
    const char* module;
};

const PaperModule kPaperModules[] = {
    {"stack", "assemble"},   {"stack", "checkcrc"},
    {"stack", "prochdr"},    {"stack", "toplevel"},
    {"buffer", "producer"},  {"buffer", "playback"},
    {"buffer", "blinker"},   {"buffer", "buffer_top"},
};

std::string paperSource(const std::string& paper)
{
    return paper == "stack" ? paper::protocolStackSource()
                            : paper::audioBufferSource();
}

/// Records `instants` instants of random stimulus on a fresh flat engine
/// of `mod` and returns the trace plus the recorded engine's packed
/// post-state.
rt::InputTrace recordRandom(const CompiledModule& mod, unsigned seed,
                            int instants,
                            std::vector<std::uint8_t>* finalState = nullptr)
{
    auto eng = mod.makeSyncEngine();
    rt::RecordingEngine rec(*eng, mod.name());
    corpus::runStimulus(rec, corpus::Profile::Random, seed, instants);
    if (finalState)
        *finalState = rt::packEngineState(
            *eng, rt::computeInstanceLayout(mod.moduleSema()));
    return rec.takeTrace();
}

std::string serialize(const rt::InputTrace& t, rt::TraceFormat fmt)
{
    std::ostringstream os;
    rt::writeTrace(t, os, fmt);
    return os.str();
}

TEST(TraceReplayTest, BinaryRoundTripIsLossless)
{
    Compiler compiler(paper::audioBufferSource());
    auto mod = compiler.compile("buffer_top");
    rt::InputTrace t = recordRandom(*mod, 5, 40);
    ASSERT_EQ(t.instants.size(), 41u); // boot + 40 stimulus instants

    std::string bin = serialize(t, rt::TraceFormat::Binary);
    std::istringstream is(bin);
    rt::InputTrace back = rt::readTrace(is);
    EXPECT_EQ(back.module, t.module);
    EXPECT_EQ(serialize(back, rt::TraceFormat::Binary), bin);
    EXPECT_EQ(back.outputLog(), t.outputLog());
}

TEST(TraceReplayTest, TextRoundTripIsLossless)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    rt::InputTrace t = recordRandom(*mod, 9, 30);

    std::string text = serialize(t, rt::TraceFormat::Text);
    EXPECT_EQ(text.rfind("eclrtrace 1\n", 0), 0u);
    std::istringstream is(text);
    rt::InputTrace back = rt::readTrace(is);
    // The two formats agree bit-for-bit after a text round trip.
    EXPECT_EQ(serialize(back, rt::TraceFormat::Binary),
              serialize(t, rt::TraceFormat::Binary));
}

TEST(TraceReplayTest, UnknownFormatRejected)
{
    std::istringstream is("not a trace at all");
    EXPECT_THROW(rt::readTrace(is), EclError);
}

TEST(TraceReplayTest, ReplayDetectsTamperedOutputs)
{
    Compiler compiler(paper::audioBufferSource());
    auto mod = compiler.compile("blinker");
    rt::InputTrace t = recordRandom(*mod, 3, 20);

    // Drop one recorded output event: replay must flag the divergence.
    bool tampered = false;
    for (rt::TraceInstant& in : t.instants) {
        if (!in.outputs.empty()) {
            in.outputs.pop_back();
            tampered = true;
            break;
        }
    }
    ASSERT_TRUE(tampered);
    auto eng = mod->makeSyncEngine();
    rt::TraceReplayResult r = rt::replayTrace(*eng, t);
    EXPECT_FALSE(r.outputsMatch);
    EXPECT_NE(r.mismatch.find("instant"), std::string::npos);
}

TEST(TraceReplayTest, ReplayOnWrongModuleFails)
{
    Compiler stack(paper::protocolStackSource());
    rt::InputTrace t = recordRandom(*stack.compile("toplevel"), 2, 10);
    Compiler buffer(paper::audioBufferSource());
    auto eng = buffer.compile("buffer_top")->makeSyncEngine();
    EXPECT_THROW(rt::replayTrace(*eng, t), EclError);
}

// The tentpole contract, proven over all 8 paper modules: a trace
// recorded from a SyncEngine replays bit-exactly — outputs AND packed
// post-state — on a fresh SyncEngine, on a BatchEngine instance, and
// across -O0/-O2, with the documented ExecCounters relationships.
TEST(TraceReplayTest, RecordedTraceReplaysBitExactEverywhere)
{
    unsigned seed = 100;
    for (const PaperModule& pm : kPaperModules) {
        SCOPED_TRACE(std::string(pm.paper) + "/" + pm.module);
        Compiler compiler(paperSource(pm.paper));
        auto mod2 = compiler.compile(pm.module); // -O2 default
        CompileOptions o0;
        o0.optLevel = 0;
        auto mod0 = compiler.compile(pm.module, o0);

        std::vector<std::uint8_t> recordedState;
        rt::InputTrace t = recordRandom(*mod2, seed++, 50, &recordedState);

        // Fresh SyncEngine, same compile: outputs + full packed state.
        auto e2 = mod2->makeSyncEngine();
        rt::TraceReplayResult sync2 = rt::replayTrace(*e2, t);
        EXPECT_TRUE(sync2.outputsMatch) << sync2.mismatch;
        EXPECT_EQ(sync2.finalState, recordedState);
        EXPECT_EQ(sync2.instants, t.instants.size());

        // BatchEngine instance (not #0, to exercise arena strides):
        // outputs, full packed state, and EXACT counters vs sync.
        auto batch = mod2->makeBatchEngine(3);
        rt::TraceReplayResult bat = rt::replayTrace(*batch, 1, t);
        EXPECT_TRUE(bat.outputsMatch) << bat.mismatch;
        EXPECT_EQ(bat.finalState, sync2.finalState);
        EXPECT_EQ(bat.outputDigest, sync2.outputDigest);
        EXPECT_EQ(bat.treeTests, sync2.treeTests);
        EXPECT_EQ(bat.actionsRun, sync2.actionsRun);
        EXPECT_EQ(bat.emitsRun, sync2.emitsRun);
        EXPECT_EQ(bat.dataCounters.exprOps, sync2.dataCounters.exprOps);
        EXPECT_EQ(bat.dataCounters.loads, sync2.dataCounters.loads);
        EXPECT_EQ(bat.dataCounters.stores, sync2.dataCounters.stores);

        // Flat -O0 and the tree-walking oracle: outputs match, data bytes
        // match (control ids are renumbered by minimization at -O1+).
        auto e0 = mod0->makeSyncEngine();
        rt::TraceReplayResult sync0 = rt::replayTrace(*e0, t);
        EXPECT_TRUE(sync0.outputsMatch) << sync0.mismatch;
        EXPECT_EQ(sync0.finalData(), sync2.finalData());
        EXPECT_EQ(sync0.outputDigest, sync2.outputDigest);

        auto tw = mod0->makeSyncEngine(EngineKind::TreeWalk);
        rt::TraceReplayResult tree = rt::replayTrace(*tw, t);
        EXPECT_TRUE(tree.outputsMatch) << tree.mismatch;
        EXPECT_EQ(tree.finalData(), sync2.finalData());
        EXPECT_EQ(tree.outputDigest, sync2.outputDigest);

        // Counter contract: engine-level counters identical at every
        // level; -O0 flat matches the tree walk exactly (instruction-
        // level too); -O2's data counters may only shrink.
        EXPECT_EQ(sync0.treeTests, sync2.treeTests);
        EXPECT_EQ(sync0.actionsRun, sync2.actionsRun);
        EXPECT_EQ(sync0.emitsRun, sync2.emitsRun);
        EXPECT_EQ(sync0.treeTests, tree.treeTests);
        EXPECT_EQ(sync0.actionsRun, tree.actionsRun);
        EXPECT_EQ(sync0.dataCounters.exprOps, tree.dataCounters.exprOps);
        EXPECT_EQ(sync0.dataCounters.loads, tree.dataCounters.loads);
        EXPECT_EQ(sync0.dataCounters.stores, tree.dataCounters.stores);
        EXPECT_LE(sync2.dataCounters.exprOps, sync0.dataCounters.exprOps);
        EXPECT_LE(sync2.dataCounters.loads, sync0.dataCounters.loads);
        EXPECT_LE(sync2.dataCounters.stores, sync0.dataCounters.stores);
    }
}

// A serialized trace is as replayable as a live one: the full
// record -> write -> read -> replay loop stays bit-exact in both formats.
TEST(TraceReplayTest, SerializedTraceReplaysBitExact)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    std::vector<std::uint8_t> recordedState;
    rt::InputTrace t = recordRandom(*mod, 42, 60, &recordedState);

    for (rt::TraceFormat fmt :
         {rt::TraceFormat::Binary, rt::TraceFormat::Text}) {
        std::istringstream is(serialize(t, fmt));
        rt::InputTrace back = rt::readTrace(is);
        auto eng = mod->makeSyncEngine();
        rt::TraceReplayResult r = rt::replayTrace(*eng, back);
        EXPECT_TRUE(r.outputsMatch) << r.mismatch;
        EXPECT_EQ(r.finalState, recordedState);
    }
}

} // namespace
