#include <gtest/gtest.h>
#include "src/core/compiler.h"
#include "src/core/paper_sources.h"

TEST(Smoke, ProtocolStackCompiles)
{
    ecl::Compiler compiler(ecl::paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    ASSERT_NE(mod, nullptr);
    auto stats = mod->machine().stats();
    EXPECT_GT(stats.states, 2u);
    fprintf(stderr, "toplevel: states=%zu leaves=%zu tests=%zu actions=%zu\n",
            stats.states, stats.leaves, stats.testNodes, stats.actionsTotal);
}

TEST(Smoke, AssembleRuns)
{
    ecl::Compiler compiler(ecl::paper::protocolStackSource());
    auto mod = compiler.compile("assemble");
    auto eng = mod->makeEngine();
    eng->react(); // boot instant: control reaches the first await
    for (int i = 0; i < ecl::paper::kPktSize - 1; ++i) {
        eng->setInputScalar("in_byte", i & 0xff);
        eng->react();
        EXPECT_FALSE(eng->outputPresent("outpkt")) << "byte " << i;
    }
    eng->setInputScalar("in_byte", 7);
    eng->react();
    EXPECT_TRUE(eng->outputPresent("outpkt"));
    ecl::Value pkt = eng->outputValue("outpkt");
    EXPECT_EQ(pkt.size(), static_cast<size_t>(ecl::paper::kPktSize));
    EXPECT_EQ(pkt.data()[0], 0);
    EXPECT_EQ(pkt.data()[5], 5);
    EXPECT_EQ(pkt.data()[63], 7);
}
