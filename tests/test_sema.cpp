// Semantic analysis tests: type layout (incl. unions), constants, module
// signal/variable tables, type checking, ECL-specific rules, elaboration.
#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/sema/elaborate.h"
#include "src/sema/sema.h"

namespace {

using namespace ecl;

struct Analyzed {
    ast::Program program;
    ProgramSema sema;
    Diagnostics diags;
};

std::unique_ptr<Analyzed> analyze(const std::string& src)
{
    auto out = std::make_unique<Analyzed>();
    out->program = parseEcl(src, out->diags);
    out->sema = analyzeProgramDecls(out->program, out->diags);
    out->sema.program = &out->program;
    return out;
}

ModuleSema analyzeFlat(Analyzed& a, const std::string& name)
{
    auto flat = elaborate(a.program, a.sema, name, a.diags);
    ModuleSema ms = analyzeModule(*flat, a.sema, a.diags);
    // NOTE: tests only inspect tables that don't dangle into `flat`.
    ms.decl = nullptr;
    return ms;
}

void expectSemaError(const std::string& src, const std::string& fragment,
                     const std::string& module = "")
{
    try {
        auto a = analyze(src);
        for (const ast::TopDeclPtr& d : a->program.decls)
            if (d->kind == ast::DeclKind::Function)
                analyzeFunction(static_cast<const ast::FunctionDecl&>(*d),
                                a->sema, a->diags);
        if (!module.empty()) {
            auto flat = elaborate(a->program, a->sema, module, a->diags);
            analyzeModule(*flat, a->sema, a->diags);
        }
        FAIL() << "expected error containing '" << fragment << "'";
    } catch (const EclError& e) {
        EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
            << e.what();
    }
}

// --- types and layout --------------------------------------------------------

TEST(TypeLayoutTest, ScalarSizes)
{
    TypeTable t;
    EXPECT_EQ(t.boolType()->size(), 1u);
    EXPECT_EQ(t.charType()->size(), 1u);
    EXPECT_EQ(t.ucharType()->size(), 1u);
    EXPECT_EQ(t.shortType()->size(), 2u);
    EXPECT_EQ(t.intType()->size(), 4u);
    EXPECT_EQ(t.uintType()->size(), 4u);
    EXPECT_TRUE(t.charType()->isSigned());
    EXPECT_FALSE(t.ucharType()->isSigned());
    EXPECT_EQ(t.lookup("long"), t.intType()); // MIPS32 model
}

TEST(TypeLayoutTest, PacketLayoutFromPaper)
{
    auto a = analyze(R"(
#define HDRSIZE 6
#define DATASIZE 56
#define CRCSIZE 2
#define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE
typedef unsigned char byte;
typedef struct { byte packet[PKTSIZE]; } packet_view_1_t;
typedef struct { byte header[HDRSIZE]; byte data[DATASIZE]; byte crc[CRCSIZE]; } packet_view_2_t;
typedef union { packet_view_1_t raw; packet_view_2_t cooked; } packet_t;
)");
    const Type* pkt = a->sema.types.lookup("packet_t");
    ASSERT_NE(pkt, nullptr);
    EXPECT_EQ(pkt->kind(), TypeKind::Union);
    EXPECT_EQ(pkt->size(), 64u);
    const Type* v2 = a->sema.types.lookup("packet_view_2_t");
    EXPECT_EQ(v2->findField("header")->offset, 0u);
    EXPECT_EQ(v2->findField("data")->offset, 6u);
    EXPECT_EQ(v2->findField("crc")->offset, 62u);
    // Union views both start at offset 0.
    EXPECT_EQ(pkt->findField("raw")->offset, 0u);
    EXPECT_EQ(pkt->findField("cooked")->offset, 0u);
}

TEST(TypeLayoutTest, ArrayCanonicalization)
{
    TypeTable t;
    const Type* a1 = t.arrayOf(t.intType(), 4);
    const Type* a2 = t.arrayOf(t.intType(), 4);
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(a1->size(), 16u);
}

TEST(TypeLayoutTest, NestedArrays)
{
    auto a = analyze("typedef unsigned char byte;\n"
                     "typedef struct { byte m[2][3]; } mat_t;");
    const Type* m = a->sema.types.lookup("mat_t")->findField("m")->type;
    EXPECT_EQ(m->count(), 2u);
    EXPECT_EQ(m->element()->count(), 3u);
    EXPECT_EQ(m->size(), 6u);
}

TEST(TypeLayoutTest, DuplicateFieldRejected)
{
    expectSemaError("typedef struct { int a; int a; } t;", "duplicate field");
}

// --- constants ---------------------------------------------------------------

TEST(ConstantsTest, ConstGlobalsAndSizeof)
{
    auto a = analyze("typedef struct { int x; int y; } pt;\n"
                     "const int A = 3 * 4;\n"
                     "const int B = A + sizeof(pt);\n"
                     "const int C = A > 10 ? 1 : 2;");
    EXPECT_EQ(a->sema.constants.at("A"), 12);
    EXPECT_EQ(a->sema.constants.at("B"), 20);
    EXPECT_EQ(a->sema.constants.at("C"), 1);
}

TEST(ConstantsTest, NonConstGlobalRejected)
{
    expectSemaError("int g;", "must be 'const'");
}

TEST(ConstantsTest, DivisionByZeroRejected)
{
    expectSemaError("const int A = 1 / 0;", "division by zero");
}

// --- module analysis -----------------------------------------------------------

TEST(ModuleSemaTest, SignalAndVarTables)
{
    auto a = analyze(R"(
typedef unsigned char byte;
module m (input pure reset, input byte b, output bool ok)
{
    signal pure k;
    int n;
    byte buf[4];
    await (b);
    emit_v (ok, n > 0);
    emit (k);
    halt ();
})");
    ModuleSema ms = analyzeFlat(*a, "m");
    ASSERT_EQ(ms.signals.size(), 4u);
    EXPECT_EQ(ms.signals[0].name, "reset");
    EXPECT_EQ(ms.signals[0].dir, SignalDir::Input);
    EXPECT_TRUE(ms.signals[0].pure);
    EXPECT_EQ(ms.signals[1].valueType->size(), 1u);
    EXPECT_EQ(ms.signals[2].dir, SignalDir::Output);
    EXPECT_EQ(ms.signals[3].dir, SignalDir::Local);
    ASSERT_EQ(ms.vars.size(), 2u);
    EXPECT_EQ(ms.vars[1].type->size(), 4u);
}

TEST(ModuleSemaTest, PureSignalValueReadRejected)
{
    expectSemaError(
        "module m (input pure a, output int o) { emit_v (o, a); }",
        "has no value", "m");
}

TEST(ModuleSemaTest, EmitInputRejected)
{
    expectSemaError("module m (input pure a) { emit (a); }",
                    "cannot emit input", "m");
}

TEST(ModuleSemaTest, EmitValueOnPureRejected)
{
    expectSemaError("module m (output pure o) { emit_v (o, 1); }",
                    "emit_v on pure", "m");
}

TEST(ModuleSemaTest, ValuedEmitWithoutValueRejected)
{
    expectSemaError("module m (output int o) { emit (o); }",
                    "must be emitted with emit_v", "m");
}

TEST(ModuleSemaTest, ShadowingRejected)
{
    expectSemaError("module m (input pure a) { int n; { int n; } halt(); }",
                    "forbids shadowing", "m");
}

TEST(ModuleSemaTest, SignalVarCollisionRejected)
{
    expectSemaError("module m (input int a) { int a; halt(); }",
                    "duplicate", "m");
}

TEST(ModuleSemaTest, AssignToSignalRejected)
{
    expectSemaError("module m (input int a) { a = 3; }",
                    "not assignable", "m");
}

TEST(ModuleSemaTest, ReturnInModuleRejected)
{
    expectSemaError("module m (input pure a) { return; }",
                    "not allowed in a module", "m");
}

TEST(ModuleSemaTest, BreakOutsideLoopRejected)
{
    expectSemaError("module m (input pure a) { break; }",
                    "outside of a loop", "m");
}

TEST(ModuleSemaTest, BreakAcrossParRejected)
{
    expectSemaError("module m (input pure a) {"
                    " while (1) { par { { break; } } } }",
                    "outside of a loop", "m");
}

TEST(ModuleSemaTest, UnknownSignalInGuard)
{
    expectSemaError("module m (input pure a) { await (nosuch); }",
                    "unknown signal", "m");
}

TEST(ModuleSemaTest, ArrayAssignmentRejected)
{
    expectSemaError("typedef unsigned char byte;\n"
                    "module m (input pure a) { byte x[4]; byte y[4];"
                    " x = y; halt(); }",
                    "array assignment", "m");
}

TEST(ModuleSemaTest, AggregateAssignmentAllowed)
{
    auto a = analyze("typedef struct { int v[2]; } box_t;\n"
                     "module m (input box_t in, output box_t out) {"
                     " box_t tmp; await (in); tmp = in;"
                     " emit_v (out, tmp); halt(); }");
    ModuleSema ms = analyzeFlat(*a, "m");
    SUCCEED();
}

TEST(ModuleSemaTest, BitNotOnBoolTypesAsBool)
{
    auto a = analyze("module m (input bool c, output pure o) {"
                     " await (c); if (~c) emit (o); halt(); }");
    auto flat = elaborate(a->program, a->sema, "m", a->diags);
    ModuleSema ms = analyzeModule(*flat, a->sema, a->diags);
    // find the unary expr type: scan exprType for a bool-typed unary
    bool found = false;
    for (const auto& [expr, type] : ms.exprType) {
        if (expr->kind == ast::ExprKind::Unary &&
            static_cast<const ast::UnaryExpr*>(expr)->op ==
                ast::UnaryOp::BitNot) {
            EXPECT_TRUE(type->isBool());
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

// --- functions ----------------------------------------------------------------

TEST(FunctionSemaTest, ReactiveInFunctionRejected)
{
    expectSemaError("void f(void) { halt(); }", "not allowed in C functions");
}

TEST(FunctionSemaTest, ReturnTypeChecked)
{
    expectSemaError("typedef struct { int a; } s_t;\n"
                    "int f(void) { s_t s; return s; }",
                    "incompatible types");
}

TEST(FunctionSemaTest, MissingReturnValueRejected)
{
    expectSemaError("int f(void) { return; }", "must return a value");
}

TEST(FunctionSemaTest, CallArityChecked)
{
    expectSemaError("int f(int a) { return a; }\n"
                    "module m (output int o) { emit_v (o, f(1, 2)); }",
                    "expects 1 arguments", "m");
}

// --- elaboration ----------------------------------------------------------------

TEST(ElaborateTest, InlinesAndRenames)
{
    auto a = analyze(R"(
module leaf (input pure t, output pure d)
{
    int n;
    await (t);
    n = 1;
    emit (d);
}
module top (input pure tick, output pure done)
{
    par {
        leaf (tick, done);
        leaf (tick, done);
    }
})");
    auto flat = elaborate(a->program, a->sema, "top", a->diags);
    ModuleSema ms = analyzeModule(*flat, a->sema, a->diags);
    // Two instances: two renamed copies of n.
    EXPECT_EQ(ms.vars.size(), 2u);
    EXPECT_NE(ms.vars[0].name, ms.vars[1].name);
    // Formals were substituted: no 't'/'d' signals at top level.
    EXPECT_EQ(ms.findSignal("t"), nullptr);
    EXPECT_NE(ms.findSignal("tick"), nullptr);
}

TEST(ElaborateTest, RecursionRejected)
{
    expectSemaError("module a (input pure t) { a (t); }",
                    "recursive instantiation", "a");
}

TEST(ElaborateTest, ArityChecked)
{
    expectSemaError("module leaf (input pure t) { halt(); }\n"
                    "module top (input pure x) { leaf (x, x); }",
                    "expects 1 signals", "top");
}

TEST(ElaborateTest, PureValuedMismatchRejected)
{
    expectSemaError("module leaf (input int t) { halt(); }\n"
                    "module top (input pure x) { leaf (x); }",
                    "pure/valued mismatch", "top");
}

TEST(ElaborateTest, OutputCannotDriveEnclosingInput)
{
    expectSemaError("module leaf (output pure o) { emit (o); }\n"
                    "module top (input pure x) { leaf (x); }",
                    "cannot drive enclosing input", "top");
}

TEST(ElaborateTest, SignalTypeMismatchRejected)
{
    expectSemaError("module leaf (input int t) { halt(); }\n"
                    "module top (input bool x) { leaf (x); }",
                    "type mismatch", "top");
}

TEST(ElaborateTest, ActualMustBeSignal)
{
    expectSemaError("module leaf (input int t) { halt(); }\n"
                    "module top (input int x) { int v; leaf (v); }",
                    "not a signal", "top");
}

TEST(ElaborateTest, NestedInstantiation)
{
    auto a = analyze(R"(
module inner (input pure t, output pure d) { await (t); emit (d); }
module middle (input pure t, output pure d) { inner (t, d); }
module outer (input pure t, output pure d) { middle (t, d); }
)");
    auto flat = elaborate(a->program, a->sema, "outer", a->diags);
    ModuleSema ms = analyzeModule(*flat, a->sema, a->diags);
    EXPECT_NE(ms.findSignal("t"), nullptr);
}

} // namespace
