// EFSM + reactive semantics tests: each Esterel-kernel construct's behavior
// through the full compile-and-run path, loop classification, causality.
#include <gtest/gtest.h>

#include "src/core/compiler.h"
#include "src/partition/classify.h"
#include "src/frontend/parser.h"

namespace {

using namespace ecl;

/// Compiles module `m` from `src`, boots it, and returns the engine.
struct Machine {
    explicit Machine(const std::string& src, const char* name = "m")
        : compiler(src)
    {
        mod = compiler.compile(name);
        eng = mod->makeEngine();
        eng->react(); // boot instant
    }

    /// One instant: set the listed pure inputs, react, return whether each
    /// of the listed outputs was present (joined as a string for EXPECT_EQ).
    std::string step(std::initializer_list<const char*> inputs,
                     std::initializer_list<const char*> outputs)
    {
        for (const char* i : inputs) eng->setInput(i);
        eng->react();
        std::string out;
        for (const char* o : outputs) {
            if (!out.empty()) out += ",";
            out += eng->outputPresent(o) ? "1" : "0";
        }
        return out;
    }

    Compiler compiler;
    std::shared_ptr<CompiledModule> mod;
    std::unique_ptr<rt::ReactiveEngine> eng;
};

TEST(EfsmSemanticsTest, AwaitIsNotImmediate)
{
    Machine m("module m (input pure a, output pure o) {"
              " while (1) { await (a); emit (o); } }");
    // Boot already consumed; a present in the very first instant after boot
    // is caught (await armed at boot).
    EXPECT_EQ(m.step({"a"}, {"o"}), "1");
    EXPECT_EQ(m.step({}, {"o"}), "0");
    EXPECT_EQ(m.step({"a"}, {"o"}), "1");
}

TEST(EfsmSemanticsTest, AwaitExpression)
{
    Machine m("module m (input pure a, input pure b, output pure o) {"
              " while (1) { await (a & ~b); emit (o); } }");
    EXPECT_EQ(m.step({"a", "b"}, {"o"}), "0"); // a&~b false
    EXPECT_EQ(m.step({"b"}, {"o"}), "0");
    EXPECT_EQ(m.step({"a"}, {"o"}), "1");
}

TEST(EfsmSemanticsTest, StrongAbortSuppressesBody)
{
    Machine m("module m (input pure kill, input pure t, output pure o,"
              " output pure done) {"
              " do { while (1) { await (t); emit (o); } } abort (kill);"
              " emit (done); halt (); }");
    EXPECT_EQ(m.step({"t"}, {"o", "done"}), "1,0");
    // kill and t together: strong abort wins, body emits nothing.
    EXPECT_EQ(m.step({"t", "kill"}, {"o", "done"}), "0,1");
    EXPECT_EQ(m.step({"t"}, {"o", "done"}), "0,0"); // halted
}

TEST(EfsmSemanticsTest, WeakAbortLetsBodyRunLastInstant)
{
    Machine m("module m (input pure kill, input pure t, output pure o,"
              " output pure done) {"
              " do { while (1) { await (t); emit (o); } } weak_abort (kill);"
              " emit (done); halt (); }");
    EXPECT_EQ(m.step({"t"}, {"o", "done"}), "1,0");
    // weak abort: body's emission still happens in the killing instant.
    EXPECT_EQ(m.step({"t", "kill"}, {"o", "done"}), "1,1");
}

TEST(EfsmSemanticsTest, AbortHandlerRuns)
{
    Machine m("module m (input pure kill, output pure h) {"
              " do { halt (); } abort (kill) handle { emit (h); }"
              " halt (); }");
    EXPECT_EQ(m.step({}, {"h"}), "0");
    EXPECT_EQ(m.step({"kill"}, {"h"}), "1");
    EXPECT_EQ(m.step({"kill"}, {"h"}), "0"); // handler ran once
}

TEST(EfsmSemanticsTest, HandlerWithPausesResumable)
{
    Machine m("module m (input pure kill, input pure t, output pure h1,"
              " output pure h2) {"
              " do { halt (); } abort (kill) handle {"
              "   emit (h1); await (t); emit (h2); }"
              " halt (); }");
    EXPECT_EQ(m.step({"kill"}, {"h1", "h2"}), "1,0");
    EXPECT_EQ(m.step({}, {"h1", "h2"}), "0,0");
    EXPECT_EQ(m.step({"t"}, {"h1", "h2"}), "0,1");
}

TEST(EfsmSemanticsTest, AbortNormalTerminationSkipsHandler)
{
    Machine m("module m (input pure kill, input pure t, output pure h,"
              " output pure done) {"
              " do { await (t); } abort (kill) handle { emit (h); }"
              " emit (done); halt (); }");
    EXPECT_EQ(m.step({"t"}, {"h", "done"}), "0,1");
}

TEST(EfsmSemanticsTest, SuspendFreezesBody)
{
    Machine m("module m (input pure hold, input pure t, output pure o) {"
              " do { while (1) { await (t); emit (o); } } suspend (hold); }");
    EXPECT_EQ(m.step({"t"}, {"o"}), "1");
    EXPECT_EQ(m.step({"t", "hold"}, {"o"}), "0"); // frozen, event lost
    EXPECT_EQ(m.step({"t"}, {"o"}), "1");         // resumes where it was
}

TEST(EfsmSemanticsTest, ParJoinWaitsForAllBranches)
{
    Machine m("module m (input pure a, input pure b, output pure done) {"
              " par { { await (a); } { await (b); } }"
              " emit (done); halt (); }");
    EXPECT_EQ(m.step({"a"}, {"done"}), "0");
    EXPECT_EQ(m.step({}, {"done"}), "0");
    EXPECT_EQ(m.step({"b"}, {"done"}), "1");
}

TEST(EfsmSemanticsTest, ParSimultaneousJoin)
{
    Machine m("module m (input pure a, input pure b, output pure done) {"
              " par { { await (a); } { await (b); } }"
              " emit (done); halt (); }");
    EXPECT_EQ(m.step({"a", "b"}, {"done"}), "1");
}

TEST(EfsmSemanticsTest, LocalSignalBroadcastSameInstant)
{
    // Emitter branch scheduled before tester (static causality).
    Machine m("module m (input pure go, output pure caught) {"
              " signal pure s;"
              " par {"
              "   { await (go); emit (s); }"
              "   { do { halt (); } abort (s); emit (caught); }"
              " } halt (); }");
    EXPECT_EQ(m.step({}, {"caught"}), "0");
    EXPECT_EQ(m.step({"go"}, {"caught"}), "1");
}

TEST(EfsmSemanticsTest, BreakExitsReactiveLoop)
{
    Machine m("module m (input pure t, input pure q, output pure o,"
              " output pure done) {"
              " while (1) { await (t); present (q) { break; }"
              "   emit (o); }"
              " emit (done); halt (); }");
    EXPECT_EQ(m.step({"t"}, {"o", "done"}), "1,0");
    EXPECT_EQ(m.step({"t", "q"}, {"o", "done"}), "0,1");
}

TEST(EfsmSemanticsTest, ContinueRestartsLoop)
{
    Machine m("module m (input pure t, input pure skip, output pure o) {"
              " while (1) { await (t);"
              "   present (skip) { continue; }"
              "   emit (o); } }");
    EXPECT_EQ(m.step({"t", "skip"}, {"o"}), "0");
    EXPECT_EQ(m.step({"t"}, {"o"}), "1");
}

TEST(EfsmSemanticsTest, DeltaCycleKeepsModuleAlive)
{
    Machine m("module m (input pure go, output pure late) {"
              " await (go); await (); await (); emit (late); halt (); }");
    EXPECT_EQ(m.step({"go"}, {"late"}), "0");
    EXPECT_TRUE(m.eng->needsAutoResume());
    EXPECT_EQ(m.step({}, {"late"}), "0");
    EXPECT_EQ(m.step({}, {"late"}), "1");
    EXPECT_FALSE(m.eng->needsAutoResume());
}

TEST(EfsmSemanticsTest, ValuedSignalPersistsBetweenInstants)
{
    Machine m("module m (input int v, output int echo) {"
              " while (1) { await (v); await (); emit_v (echo, v + 1); } }");
    m.eng->setInputScalar("v", 41);
    m.eng->react();
    EXPECT_FALSE(m.eng->outputPresent("echo"));
    m.eng->react(); // value read one instant after emission
    EXPECT_TRUE(m.eng->outputPresent("echo"));
    EXPECT_EQ(m.eng->outputValue("echo").toInt(), 42);
}

TEST(EfsmSemanticsTest, ModuleTerminationIsFinal)
{
    Machine m("module m (input pure a, output pure o) {"
              " await (a); emit (o); }");
    EXPECT_EQ(m.step({"a"}, {"o"}), "1");
    EXPECT_TRUE(m.eng->terminated());
    EXPECT_EQ(m.step({"a"}, {"o"}), "0");
    EXPECT_TRUE(m.eng->terminated());
}

TEST(EfsmSemanticsTest, NestedAbortsOuterWins)
{
    Machine m("module m (input pure outer, input pure inner,"
              " output pure oh, output pure ih) {"
              " do {"
              "   do { halt (); } abort (inner) handle { emit (ih); }"
              "   halt ();"
              " } abort (outer) handle { emit (oh); }"
              " halt (); }");
    // Both in the same instant: the outer abort pre-empts everything; the
    // inner handler must not run.
    EXPECT_EQ(m.step({"outer", "inner"}, {"oh", "ih"}), "1,0");
}

TEST(EfsmSemanticsTest, SuspendedAbortStillArmed)
{
    Machine m("module m (input pure hold, input pure kill, input pure t,"
              " output pure o, output pure h) {"
              " do {"
              "   do { while (1) { await (t); emit (o); } } abort (kill)"
              "     handle { emit (h); }"
              " } suspend (hold); }");
    EXPECT_EQ(m.step({"t"}, {"o", "h"}), "1,0");
    // Suspended instant: even kill is ignored (outer suspend freezes all).
    EXPECT_EQ(m.step({"kill", "hold"}, {"o", "h"}), "0,0");
    EXPECT_EQ(m.step({"kill"}, {"o", "h"}), "0,1");
}

// --- classification ---------------------------------------------------------

TEST(ClassifyTest, DataLoopExtracted)
{
    Compiler compiler("module m (input int v, output int o) {"
                      " int i; int s;"
                      " while (1) { await (v);"
                      "   for (i = 0, s = 0; i < 8; i++) { s += v; }"
                      "   emit_v (o, s); } }");
    auto mod = compiler.compile("m");
    int extracted = 0;
    for (const auto& a : mod->reactiveProgram().actions)
        if (a.extractedLoop) ++extracted;
    EXPECT_EQ(extracted, 1);
}

TEST(ClassifyTest, ReactiveLoopNotExtracted)
{
    Compiler compiler("module m (input pure t, output pure o) {"
                      " while (1) { await (t); emit (o); } }");
    auto mod = compiler.compile("m");
    for (const auto& a : mod->reactiveProgram().actions)
        EXPECT_FALSE(a.extractedLoop);
}

TEST(ClassifyTest, MixedLoopRejected)
{
    Compiler compiler("module m (input pure t, output pure o) {"
                      " int i; i = 0;"
                      " while (1) { if (i > 2) { await (t); } i++; } }");
    EXPECT_THROW(compiler.compile("m"), EclError);
}

TEST(ClassifyTest, EmittingNonHaltingLoopRejected)
{
    Compiler compiler("module m (input pure t, output pure o) {"
                      " int i;"
                      " for (i = 0; i < 4; i++) { emit (o); } halt(); }");
    EXPECT_THROW(compiler.compile("m"), EclError);
}

TEST(ClassifyTest, HaltFlowAnalysis)
{
    Diagnostics diags;
    ast::Program p = parseEcl(
        "module m (input pure t) {"
        " while (1) { if (1) { await (t); } else { halt (); } } }",
        diags);
    const ast::ModuleDecl* m = p.findModule("m");
    ClassifyResult r = classifyLoops(*m, diags);
    EXPECT_EQ(r.reactiveLoops, 1);
    EXPECT_EQ(r.dataLoops, 0);
}

// --- causality ----------------------------------------------------------------

TEST(CausalityTest, EmitterOrderedBeforeTester)
{
    // Textually the tester comes first; the scheduler must reorder.
    Machine m("module m (input pure go, output pure caught) {"
              " signal pure s;"
              " par {"
              "   { do { halt (); } abort (s); emit (caught); }"
              "   { await (go); emit (s); }"
              " } halt (); }");
    EXPECT_EQ(m.step({"go"}, {"caught"}), "1");
}

TEST(CausalityTest, CycleRejected)
{
    Compiler compiler("module m (input pure go) {"
                      " signal pure s1, s2;"
                      " par {"
                      "   { await (s1); emit (s2); }"
                      "   { await (s2); emit (s1); }"
                      " } }");
    try {
        compiler.compile("m");
        FAIL() << "expected causality cycle error";
    } catch (const EclError& e) {
        EXPECT_NE(std::string(e.what()).find("causality cycle"),
                  std::string::npos);
    }
}

// --- machine shape -------------------------------------------------------------

TEST(EfsmShapeTest, AwaitChainStateCount)
{
    Compiler compiler("module m (input pure t, output pure o) {"
                      " while (1) { await (t); await (t); await (t);"
                      " emit (o); } }");
    auto mod = compiler.compile("m");
    // boot + 3 awaits (termination unreachable: infinite loop).
    EXPECT_EQ(mod->machine().stats().states, 4u);
}

TEST(EfsmShapeTest, DeterministicRebuild)
{
    const char* src = "module m (input pure a, input pure b, output pure o)"
                      " { while (1) { await (a & b); emit (o); } }";
    Compiler c1(src);
    Compiler c2(src);
    EXPECT_EQ(c1.compile("m")->machine().describe(),
              c2.compile("m")->machine().describe());
}

TEST(EfsmShapeTest, StateLimitEnforced)
{
    // 12 independent 2-state machines => 2^12 product states > limit.
    std::string src = "module m (input pure t0, input pure t1, input pure t2,"
                      " input pure t3, input pure t4, input pure t5,"
                      " input pure t6, input pure t7, input pure t8,"
                      " input pure t9, input pure ta, input pure tb) { par {";
    for (const char* n : {"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
                          "t8", "t9", "ta", "tb"})
        src += std::string("{ while (1) { await (") + n + "); await (); } }";
    src += "} }";
    Compiler compiler(src);
    CompileOptions opts;
    opts.efsm.maxStates = 100;
    EXPECT_THROW(compiler.compile("m", opts), EclError);
}

} // namespace
