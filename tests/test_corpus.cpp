// The persisted scenario corpus (tests/corpus/*.scn): every committed
// scenario runs a differential sweep — flat VM at -O2 and -O0 against
// the tree-walking oracle — and every trace must match the digest pinned
// in the scenario file. Also enforces the corpus contracts: at least 24
// scenarios, generator sources free of drift, the quarantine list EMPTY,
// and the program generator stable for a fixed seed set.
#include <gtest/gtest.h>

#include <set>

#include "src/core/compiler.h"
#include "src/corpus/corpus.h"
#include "src/corpus/program_gen.h"
#include "src/support/strings.h"

#ifndef ECL_CORPUS_DIR
#error "ECL_CORPUS_DIR must point at the committed corpus directory"
#endif

namespace {

using namespace ecl;

std::vector<corpus::Scenario> loadAll()
{
    static std::vector<corpus::Scenario> set =
        corpus::loadCorpusDir(ECL_CORPUS_DIR);
    return set;
}

TEST(CorpusTest, AtLeastTwentyFourScenariosCommitted)
{
    EXPECT_GE(loadAll().size(), 24u);
}

TEST(CorpusTest, ScenarioNamesUniqueAndWellFormed)
{
    std::set<std::string> names;
    for (const corpus::Scenario& s : loadAll()) {
        EXPECT_FALSE(s.name.empty());
        EXPECT_FALSE(s.kind.empty());
        EXPECT_FALSE(s.oracleDigest.empty())
            << s.name << " has no pinned digest — run corpusgen --write";
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate scenario name " << s.name;
    }
}

TEST(CorpusTest, QuarantineListStaysEmpty)
{
    // The mechanism exists so a genuinely blocked scenario can be parked
    // with a linked issue instead of being deleted — but the steady state
    // is EMPTY, and this test is the enforcement.
    std::vector<std::string> q = corpus::loadQuarantine(ECL_CORPUS_DIR);
    EXPECT_TRUE(q.empty()) << "quarantined scenarios present: " << q[0];
}

TEST(CorpusTest, AllStimulusProfilesRepresented)
{
    std::set<corpus::Profile> seen;
    for (const corpus::Scenario& s : loadAll()) seen.insert(s.profile);
    EXPECT_GE(seen.size(), 5u)
        << "corpus no longer covers every stimulus profile";
}

TEST(CorpusTest, GeneratedSourcesFreeOfDrift)
{
    for (const corpus::Scenario& s : loadAll()) {
        SCOPED_TRACE(s.name);
        std::string regen = corpus::regenerateSource(s);
        if (regen.empty()) continue; // paper kinds have no generator
        EXPECT_EQ(regen, s.source)
            << "inline source differs from regeneration — generator drift";
    }
}

TEST(CorpusTest, RoundTripSerialization)
{
    for (const corpus::Scenario& s : loadAll()) {
        SCOPED_TRACE(s.name);
        corpus::Scenario back =
            corpus::parseScenario(corpus::serializeScenario(s));
        EXPECT_EQ(back.name, s.name);
        EXPECT_EQ(back.kind, s.kind);
        EXPECT_EQ(back.shape, s.shape);
        EXPECT_EQ(back.module, s.module);
        EXPECT_EQ(back.seed, s.seed);
        EXPECT_EQ(back.depth, s.depth);
        EXPECT_EQ(back.profile, s.profile);
        EXPECT_EQ(back.stimSeed, s.stimSeed);
        EXPECT_EQ(back.instants, s.instants);
        EXPECT_EQ(back.oracleDigest, s.oracleDigest);
        EXPECT_EQ(back.source, s.source);
    }
}

// The differential sweep: flat -O2, flat -O0 and the tree-walking oracle
// must produce the identical stimulus trace, and that trace must match
// the digest pinned when the scenario was committed. Quarantined names
// are skipped here (and flagged by QuarantineListStaysEmpty).
TEST(CorpusTest, DifferentialSweepMatchesPinnedDigests)
{
    std::vector<std::string> quarantine =
        corpus::loadQuarantine(ECL_CORPUS_DIR);
    auto quarantined = [&](const std::string& name) {
        return std::find(quarantine.begin(), quarantine.end(), name) !=
               quarantine.end();
    };
    std::size_t swept = 0;
    for (const corpus::Scenario& s : loadAll()) {
        if (quarantined(s.name)) continue;
        SCOPED_TRACE(s.name);

        std::string oracle = corpus::oracleTrace(s);
        EXPECT_EQ(hex64(fnv1a64(oracle)), s.oracleDigest)
            << "oracle trace drifted from the pinned digest";

        auto mod2 = corpus::compileScenario(s, 2);
        auto e2 = mod2->makeEngine();
        EXPECT_EQ(corpus::runStimulus(*e2, s.profile, s.stimSeed,
                                      s.instants),
                  oracle)
            << "flat -O2 diverged from the tree-walk oracle";

        auto mod0 = corpus::compileScenario(s, 0);
        auto e0 = mod0->makeEngine();
        EXPECT_EQ(corpus::runStimulus(*e0, s.profile, s.stimSeed,
                                      s.instants),
                  oracle)
            << "flat -O0 diverged from the tree-walk oracle";
        ++swept;
    }
    EXPECT_GE(swept, 24u);
}

// The batch dirty-list stressers added alongside the multi-instance
// concurrency suite: their oracle digests are pinned HERE as well as in
// the .scn files, so a silent regeneration of the corpus cannot move
// them without this test naming the scenario. Every one was chosen for
// observability (the trace shows at least one present output).
TEST(CorpusTest, BatchStresserDigestsPinned)
{
    const std::pair<const char*, const char*> kPinned[] = {
        {"stack_checkcrc_sparse", "60d1aa93088c87b2"},
        {"buffer_sparse", "4d74143f6d60cb46"},
        {"buffer_blinker_bursty", "4f173a2cf6bf6845"},
        {"buffer_playback_sparse", "ea9ad3d193b8101f"},
        {"buffer_producer_random", "4502c48faca56f7d"},
    };
    std::vector<corpus::Scenario> all = loadAll();
    for (const auto& [name, digest] : kPinned) {
        SCOPED_TRACE(name);
        auto it = std::find_if(all.begin(), all.end(),
                               [n = std::string(name)](const auto& s) {
                                   return s.name == n;
                               });
        ASSERT_NE(it, all.end()) << "scenario missing from the corpus";
        EXPECT_EQ(it->oracleDigest, digest);
        std::string oracle = corpus::oracleTrace(*it);
        EXPECT_EQ(hex64(fnv1a64(oracle)), digest);
        EXPECT_TRUE(oracle.find('1') != std::string::npos ||
                    oracle.find('=') != std::string::npos)
            << "scenario is unobservable (no output ever present)";
    }
}

// Generator stability: the program TEXT for a fixed (seed, depth) set is
// pinned by digest. Any reshuffle of ProgramGen's draw sequence breaks
// every committed generated scenario at once — this test names the
// culprit directly. Refresh with `corpusgen --seed-digests` ONLY on a
// deliberate, corpus-refreshing generator change.
TEST(CorpusTest, GeneratorSeedStability)
{
    const std::string kHexPinned[] = {
        "", // seeds are 1-based
        "7c042ae0bf7f6786", "20a1316c1a5f166a",
        "5d5972ea5711e631", "599772718349e8ef",
        "ebb86e7a373567ed", "4f6cc1f73f94a687",
        "0ccd072af5c45817", "b13f4e76aab94acc",
    };
    for (unsigned seed = 1; seed <= 8; ++seed) {
        corpus::ProgramGen gen(seed, 3);
        EXPECT_EQ(hex64(fnv1a64(gen.generate())), kHexPinned[seed])
            << "generator drift for seed " << seed;
    }
}

} // namespace
