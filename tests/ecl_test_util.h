// Shared helpers for the ECL test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"

namespace ecl::test {

/// Builds a protocol-stack packet. Header bytes are `addr`; data bytes
/// 0..19 carry `seed`-derived values; data bytes 26.. and the CRC bytes are
/// zero so the paper's CRC fold passes (bytes shifted below index 32 leave
/// the 32-bit fold, making the all-zero tail self-consistent — see
/// EXPERIMENTS.md). Set `corruptTail` to flip a tail byte and break the CRC.
inline std::vector<std::uint8_t> makePacket(std::uint8_t addr, int seed,
                                            bool corruptTail = false)
{
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(paper::kPktSize),
                                    0);
    for (int i = 0; i < paper::kHdrSize; ++i)
        bytes[static_cast<std::size_t>(i)] = addr;
    for (int i = 0; i < 20; ++i)
        bytes[static_cast<std::size_t>(paper::kHdrSize + i)] =
            static_cast<std::uint8_t>((seed * 31 + i * 7) & 0xff);
    if (corruptTail) bytes[40] = 0x5a;
    return bytes;
}

/// Mirrors Figure 2's CRC fold with the evaluator's storage semantics
/// (32-bit wraparound per assignment).
inline bool paperCrcOk(const std::vector<std::uint8_t>& bytes)
{
    std::uint32_t crc = 0;
    for (std::uint8_t b : bytes) crc = (crc ^ b) << 1;
    std::uint64_t le16 = static_cast<std::uint64_t>(bytes[62]) |
                         (static_cast<std::uint64_t>(bytes[63]) << 8);
    return static_cast<std::uint64_t>(crc) == le16;
}

} // namespace ecl::test
