// bench_diff library tests: the flat JSON parser, the metric classifier,
// and the regression verdicts — including the deliberate ≥10% regression
// that the CI gate exists to catch, and the committed-baseline sanity
// checks (every baseline parses and compares clean against itself).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench/bench_diff.h"

namespace {

using namespace ecl::bench;

FlatBench parse(const std::string& text) { return parseFlatBench(text); }

const char* kSample = R"({
  "schema_version": 1.0,
  "bench": "reaction_throughput",
  "workload": "protocol_stack_toplevel",
  "git_sha": "abc123",
  "opt_level": 2.0,
  "packets": 200.0,
  "modes": {
    "flat_bytecode": {
      "ns_per_reaction": 100.0,
      "reactions": 8810.0,
      "tree_tests": 50000.0
    },
    "tree_walk": {
      "ns_per_reaction": 400.0,
      "reactions": 8810.0
    }
  },
  "speedup_flat_vs_tree": 4.0
})";

TEST(BenchDiffTest, ParserFlattensNestedObjects)
{
    FlatBench b = parse(kSample);
    EXPECT_DOUBLE_EQ(b.nums.at("schema_version"), 1.0);
    EXPECT_DOUBLE_EQ(b.nums.at("modes.flat_bytecode.ns_per_reaction"),
                     100.0);
    EXPECT_DOUBLE_EQ(b.nums.at("modes.tree_walk.reactions"), 8810.0);
    EXPECT_DOUBLE_EQ(b.nums.at("speedup_flat_vs_tree"), 4.0);
    EXPECT_EQ(b.strs.at("bench"), "reaction_throughput");
    EXPECT_EQ(b.strs.at("git_sha"), "abc123");
}

TEST(BenchDiffTest, ParserRejectsMalformedInput)
{
    EXPECT_THROW(parse("{"), ecl::EclError);
    EXPECT_THROW(parse("{\"a\": }"), ecl::EclError);
    EXPECT_THROW(parse("{\"a\": 1} trailing"), ecl::EclError);
    EXPECT_THROW(parse("[1, 2]"), ecl::EclError);
}

TEST(BenchDiffTest, ClassifierKnowsTheSchema)
{
    EXPECT_EQ(classifyMetric("git_sha"), MetricClass::Ignored);
    EXPECT_EQ(classifyMetric("modes.flat.ns_per_reaction"),
              MetricClass::LowerBetter);
    EXPECT_EQ(classifyMetric("modes.batch_t4.seconds"),
              MetricClass::LowerBetter);
    EXPECT_EQ(classifyMetric("speedup_flat_vs_tree"),
              MetricClass::HigherBetter);
    EXPECT_EQ(classifyMetric("explore_t4.states_per_sec"),
              MetricClass::HigherBetter);
    EXPECT_EQ(classifyMetric("modes.batch_t4.reactions_per_sec"),
              MetricClass::HigherBetter);
    EXPECT_EQ(classifyMetric("modes.flat.reactions"),
              MetricClass::ExactCounter);
    EXPECT_EQ(classifyMetric("modes.flat.tree_tests"),
              MetricClass::ExactCounter);
    EXPECT_EQ(classifyMetric("modes.flat.addr_matches"),
              MetricClass::ExactCounter);
    EXPECT_EQ(classifyMetric("packets"), MetricClass::ExactCounter);
    EXPECT_EQ(classifyMetric("schema_version"), MetricClass::ExactCounter);
    EXPECT_EQ(classifyMetric("explore_t4.states"),
              MetricClass::ExactCounter);
    EXPECT_EQ(classifyMetric("explore_t4.peak_frontier"),
              MetricClass::Informational);
    EXPECT_EQ(classifyMetric("explore_t4.depth_reached"),
              MetricClass::Informational);
}

TEST(BenchDiffTest, IdenticalRunsPass)
{
    DiffResult r = diffBench(parse(kSample), parse(kSample));
    EXPECT_FALSE(r.regression) << renderReport("self", r);
    EXPECT_EQ(r.regressionCount(), 0u);
    EXPECT_TRUE(r.errors.empty());
}

TEST(BenchDiffTest, GitShaDifferenceIsIgnored)
{
    std::string cur = kSample;
    cur.replace(cur.find("abc123"), 6, "def456");
    DiffResult r = diffBench(parse(kSample), parse(cur));
    EXPECT_FALSE(r.regression) << renderReport("sha", r);
}

TEST(BenchDiffTest, SmallNoiseWithinThresholdPasses)
{
    std::string cur = kSample;
    // 100.0 -> 105.0 ns/reaction: +5%, inside the 10% default threshold.
    cur.replace(cur.find("\"ns_per_reaction\": 100.0"),
                std::strlen("\"ns_per_reaction\": 100.0"),
                "\"ns_per_reaction\": 105.0");
    DiffResult r = diffBench(parse(kSample), parse(cur));
    EXPECT_FALSE(r.regression) << renderReport("noise", r);
}

// The acceptance-criterion demonstration: a deliberate ≥10% time
// regression must fail the diff.
TEST(BenchDiffTest, DeliberateTenPercentRegressionFails)
{
    std::string cur = kSample;
    // 100.0 -> 115.0 ns/reaction: +15% slowdown.
    cur.replace(cur.find("\"ns_per_reaction\": 100.0"),
                std::strlen("\"ns_per_reaction\": 100.0"),
                "\"ns_per_reaction\": 115.0");
    DiffResult r = diffBench(parse(kSample), parse(cur));
    EXPECT_TRUE(r.regression);
    EXPECT_EQ(r.regressionCount(), 1u);
    std::string report = renderReport("regressed", r);
    EXPECT_NE(report.find("REGRESSION"), std::string::npos);
    EXPECT_NE(report.find("modes.flat_bytecode.ns_per_reaction"),
              std::string::npos);
}

TEST(BenchDiffTest, SpeedupDropFails)
{
    std::string cur = kSample;
    cur.replace(cur.find("\"speedup_flat_vs_tree\": 4.0"),
                std::strlen("\"speedup_flat_vs_tree\": 4.0"),
                "\"speedup_flat_vs_tree\": 3.0"); // -25%
    DiffResult r = diffBench(parse(kSample), parse(cur));
    EXPECT_TRUE(r.regression);
}

TEST(BenchDiffTest, CounterMismatchFailsEvenWhenFaster)
{
    std::string cur = kSample;
    // Faster time but different reaction count: the runs measured
    // different work, so the comparison must fail, not pass.
    cur.replace(cur.find("\"ns_per_reaction\": 100.0"),
                std::strlen("\"ns_per_reaction\": 100.0"),
                "\"ns_per_reaction\": 50.0");
    cur.replace(cur.find("\"reactions\": 8810.0"),
                std::strlen("\"reactions\": 8810.0"),
                "\"reactions\": 4405.0");
    DiffResult r = diffBench(parse(kSample), parse(cur));
    EXPECT_TRUE(r.regression);
    std::string report = renderReport("counters", r);
    EXPECT_NE(report.find("different work"), std::string::npos);
}

TEST(BenchDiffTest, MissingMetricFails)
{
    std::string cur = kSample;
    cur.replace(cur.find("\"speedup_flat_vs_tree\": 4.0"),
                std::strlen("\"speedup_flat_vs_tree\": 4.0"),
                "\"speedup_renamed\": 4.0");
    DiffResult r = diffBench(parse(kSample), parse(cur));
    EXPECT_TRUE(r.regression);
    ASSERT_FALSE(r.errors.empty());
    EXPECT_NE(r.errors[0].find("speedup_flat_vs_tree"), std::string::npos);
}

TEST(BenchDiffTest, IdentityStringMismatchFails)
{
    std::string cur = kSample;
    cur.replace(cur.find("protocol_stack_toplevel"),
                std::strlen("protocol_stack_toplevel"),
                "some_other_workloadxxxx");
    DiffResult r = diffBench(parse(kSample), parse(cur));
    EXPECT_TRUE(r.regression);
}

TEST(BenchDiffTest, CustomThresholdRespected)
{
    std::string cur = kSample;
    cur.replace(cur.find("\"ns_per_reaction\": 100.0"),
                std::strlen("\"ns_per_reaction\": 100.0"),
                "\"ns_per_reaction\": 115.0"); // +15%
    DiffOptions loose;
    loose.timeThreshold = 0.20;
    EXPECT_FALSE(diffBench(parse(kSample), parse(cur), loose).regression);
    DiffOptions tight;
    tight.timeThreshold = 0.05;
    EXPECT_TRUE(diffBench(parse(kSample), parse(cur), tight).regression);
}

TEST(BenchDiffTest, FactorMetricsAreHigherBetter)
{
    EXPECT_EQ(classifyMetric("por_on.por_reduction_factor"),
              MetricClass::HigherBetter);
    EXPECT_EQ(classifyMetric("speedup_native_succ_vs_vm"),
              MetricClass::HigherBetter);
    EXPECT_EQ(classifyMetric("explore_t1.states_per_sec"),
              MetricClass::HigherBetter);
}

TEST(BenchDiffTest, PerMetricThresholdOverridesTheGlobalOne)
{
    std::string cur = kSample;
    cur.replace(cur.find("\"ns_per_reaction\": 100.0"),
                std::strlen("\"ns_per_reaction\": 100.0"),
                "\"ns_per_reaction\": 115.0"); // +15%
    // Leaf-name override loosens just this metric past the default 10%.
    DiffOptions perLeaf;
    perLeaf.thresholds["ns_per_reaction"] = 0.20;
    EXPECT_FALSE(diffBench(parse(kSample), parse(cur), perLeaf).regression);
    // Full-dotted-path override wins over the leaf entry.
    DiffOptions perPath;
    perPath.thresholds["ns_per_reaction"] = 0.20;
    perPath.thresholds["modes.flat_bytecode.ns_per_reaction"] = 0.05;
    EXPECT_TRUE(diffBench(parse(kSample), parse(cur), perPath).regression);
    // Tightening a DIFFERENT metric must not affect this one.
    DiffOptions other;
    other.thresholds["seconds"] = 0.01;
    other.timeThreshold = 0.20;
    EXPECT_FALSE(diffBench(parse(kSample), parse(cur), other).regression);
}

TEST(BenchDiffTest, AbsoluteFloorBitesEvenWhenRelativeDiffPasses)
{
    // Identical runs pass the relative gate trivially — the vacuous-gate
    // failure mode when the baseline was recorded on slow hardware. The
    // floor is absolute and still fails the run.
    DiffOptions opts;
    opts.floors["speedup_flat_vs_tree"] = 5.0; // current is 4.0
    DiffResult r = diffBench(parse(kSample), parse(kSample), opts);
    EXPECT_TRUE(r.regression);
    std::string report = renderReport("floor", r);
    EXPECT_NE(report.find("below absolute floor"), std::string::npos);
    // A floor the metric clears changes nothing.
    DiffOptions ok;
    ok.floors["speedup_flat_vs_tree"] = 3.0;
    EXPECT_FALSE(diffBench(parse(kSample), parse(kSample), ok).regression);
}

TEST(BenchDiffTest, FloorGatesMetricsMissingFromTheBaseline)
{
    // A metric only the current run carries is informational for the
    // relative diff but still subject to its floor — new metrics are
    // born gated.
    std::string cur = kSample;
    cur.replace(cur.find("\"speedup_flat_vs_tree\": 4.0"),
                std::strlen("\"speedup_flat_vs_tree\": 4.0"),
                "\"speedup_flat_vs_tree\": 4.0, \"por_reduction_factor\": "
                "2.0");
    DiffOptions opts;
    opts.floors["por_reduction_factor"] = 3.0;
    EXPECT_TRUE(diffBench(parse(kSample), parse(cur), opts).regression);
    opts.floors["por_reduction_factor"] = 1.5;
    EXPECT_FALSE(diffBench(parse(kSample), parse(cur), opts).regression);
}

// The committed baselines themselves: every bench/baselines/BENCH_*.json
// must parse, carry the schema header, and compare clean against itself —
// the same invariants the CI gate relies on.
TEST(BenchDiffTest, CommittedBaselinesAreWellFormed)
{
#ifndef ECL_BASELINE_DIR
    GTEST_SKIP() << "ECL_BASELINE_DIR not configured";
#else
    namespace fs = std::filesystem;
    std::size_t seen = 0;
    for (const fs::directory_entry& e :
         fs::directory_iterator(ECL_BASELINE_DIR)) {
        if (e.path().extension() != ".json") continue;
        SCOPED_TRACE(e.path().string());
        std::ifstream in(e.path());
        std::stringstream buf;
        buf << in.rdbuf();
        FlatBench b = parse(buf.str());
        EXPECT_DOUBLE_EQ(b.nums.at("schema_version"), 1.0);
        EXPECT_FALSE(b.strs.at("bench").empty());
        DiffResult self = diffBench(b, b);
        EXPECT_FALSE(self.regression)
            << renderReport(e.path().filename().string(), self);
        ++seen;
    }
    EXPECT_GE(seen, 3u) << "expected committed baselines for all benches";
#endif
}

} // namespace
