// Strongest codegen validation: compile the generated C with the host gcc,
// run it, and compare its observable outputs instant-by-instant with the
// in-process EFSM engine — first on the paper's packet workload, then as a
// seeded-random differential sweep over every paper-source module (random
// per-instant input schedules, valued inputs carrying random bytes).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>

#include "src/codegen/c_gen.h"
#include "src/core/paper_sources.h"
#include "tests/ecl_test_util.h"

namespace {

using namespace ecl;

/// Builds an executable from the generated C plus a driver main() and
/// returns its stdout, or nullopt if the toolchain is unavailable.
std::string runGeneratedAssemble(const std::string& generated,
                                 const std::vector<std::uint8_t>& bytes)
{
    std::string dir = ::testing::TempDir();
    std::string cPath = dir + "ecl_gen_assemble.c";
    std::string exePath = dir + "ecl_gen_assemble.bin";

    std::ostringstream driver;
    driver << "#include <stdio.h>\n"
           << "void ecl_runtime_error(const char *m)"
           << " { printf(\"TRAP %s\\n\", m); }\n"
           << generated << "\n"
           << "int main(void)\n{\n"
           << "    static const unsigned char stream[] = {";
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        if (i) driver << ",";
        driver << static_cast<int>(bytes[i]);
    }
    driver << "};\n"
           << "    unsigned i;\n"
           << "    assemble_react(); /* boot */\n"
           << "    for (i = 0; i < sizeof stream; i++) {\n"
           << "        assemble_set_in_byte(stream[i]);\n"
           << "        assemble_react();\n"
           << "        if (outpkt_present) {\n"
           << "            unsigned j;\n"
           << "            printf(\"PKT@%u:\", i);\n"
           << "            for (j = 0; j < 8; j++)\n"
           << "                printf(\" %02x\", outpkt.raw.packet[j]);\n"
           << "            printf(\"\\n\");\n"
           << "        }\n"
           << "    }\n"
           << "    return 0;\n}\n";

    {
        std::ofstream out(cPath);
        out << driver.str();
    }
    std::string cmd = "gcc -std=c99 -O1 -o " + exePath + " " + cPath +
                      " 2>" + dir + "gcc_err.log";
    if (std::system(cmd.c_str()) != 0) return "<gcc failed>";

    std::string outPath = dir + "gen_out.txt";
    cmd = exePath + " > " + outPath;
    if (std::system(cmd.c_str()) != 0) return "<run failed>";
    std::ifstream in(outPath);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(GeneratedCExecTest, AssembleMatchesEngineOnPacketStream)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("assemble");
    std::string generated = codegen::generateC(*mod);

    // Two packets back to back plus a partial third.
    std::vector<std::uint8_t> stream;
    for (int p = 0; p < 2; ++p) {
        auto pkt = test::makePacket(paper::kAddrByte, p + 1);
        stream.insert(stream.end(), pkt.begin(), pkt.end());
    }
    stream.resize(stream.size() + 10, 0x42);

    // Reference run on the in-process engine.
    auto eng = mod->makeEngine();
    eng->react();
    std::ostringstream ref;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        eng->setInputScalar("in_byte", stream[i]);
        eng->react();
        if (eng->outputPresent("outpkt")) {
            Value pkt = eng->outputValue("outpkt");
            ref << "PKT@" << i << ":";
            char buf[8];
            for (int j = 0; j < 8; ++j) {
                std::snprintf(buf, sizeof buf, " %02x", pkt.data()[j]);
                ref << buf;
            }
            ref << "\n";
        }
    }

    std::string got = runGeneratedAssemble(generated, stream);
    ASSERT_NE(got, "<gcc failed>") << "host gcc could not compile the "
                                      "generated C";
    ASSERT_NE(got, "<run failed>");
    EXPECT_EQ(got, ref.str());
    EXPECT_EQ(got.find("TRAP"), std::string::npos);
}

// --- seeded-random differential sweep over every paper module ----------------
//
// For each module: draw a random input schedule (each input present 1/4 of
// instants; valued inputs carry random bytes, scalars pre-normalized
// through the engine's own store/reload semantics), drive the flat-VM
// engine and a host-gcc build of the generated C with the SAME schedule,
// and compare the full per-instant output log (presence, scalar values,
// aggregate bytes). Pure and scalar inputs go through the generated
// `<module>_set_<sig>` setters; aggregates are byte-copied into the signal
// variable exactly as the union setter does.

struct GenCCase {
    const char* source; ///< "stack" or "buffer".
    const char* module;
    unsigned seed;
};

void PrintTo(const GenCCase& c, std::ostream* os)
{
    *os << c.source << "/" << c.module;
}

/// Compiles `cSource` with the host gcc and returns the binary's stdout
/// ("<gcc failed>" / "<run failed>" sentinels on toolchain errors).
std::string compileAndRunC(const std::string& cSource, const std::string& tag)
{
    std::string dir = ::testing::TempDir();
    std::string cPath = dir + "ecl_sweep_" + tag + ".c";
    std::string exePath = dir + "ecl_sweep_" + tag + ".bin";
    {
        std::ofstream out(cPath);
        out << cSource;
    }
    std::string cmd = "gcc -std=c99 -O1 -o " + exePath + " " + cPath +
                      " 2>" + dir + "gcc_" + tag + ".log";
    if (std::system(cmd.c_str()) != 0) return "<gcc failed>";
    std::string outPath = dir + "out_" + tag + ".txt";
    cmd = exePath + " > " + outPath;
    if (std::system(cmd.c_str()) != 0) return "<run failed>";
    std::ifstream in(outPath);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class GeneratedCDifferentialTest : public ::testing::TestWithParam<GenCCase> {
};

TEST_P(GeneratedCDifferentialTest, RandomScheduleMatchesFlatVm)
{
    const GenCCase& gc = GetParam();
    Compiler compiler(std::string(gc.source) == std::string("stack")
                          ? paper::protocolStackSource()
                          : paper::audioBufferSource());
    auto mod = compiler.compile(gc.module);
    ASSERT_TRUE(mod->hasFlatProgram());
    const ModuleSema& sema = mod->moduleSema();
    std::string generated = codegen::generateC(*mod);

    constexpr int kInstants = 150;
    std::mt19937 rng(gc.seed);

    // One pre-drawn schedule shared by both executions.
    struct Ev {
        int sig;
        std::vector<std::uint8_t> bytes; ///< Empty for pure signals.
    };
    std::vector<std::vector<Ev>> sched(kInstants);
    for (int t = 0; t < kInstants; ++t) {
        for (const SignalInfo& s : sema.signals) {
            if (s.dir != SignalDir::Input) continue;
            if ((rng() & 3u) != 0) continue; // present 1/4 of instants
            Ev e{s.index, {}};
            if (!s.pure) {
                Value v(s.valueType);
                for (std::size_t i = 0; i < v.size(); ++i)
                    v.data()[i] = static_cast<std::uint8_t>(rng());
                // Scalars: normalize through the engine's store/reload
                // semantics (bools become 0/1) so both sides see the same
                // canonical value.
                if (s.valueType->isScalar())
                    v = Value::fromInt(s.valueType,
                                       readScalar(v.data(), s.valueType));
                e.bytes.assign(v.data(), v.data() + v.size());
            }
            sched[t].push_back(std::move(e));
        }
    }

    // --- reference run: the in-process flat-VM engine ---
    auto eng = mod->makeEngine(EngineKind::Flat);
    ASSERT_TRUE(eng->usesFlatExecution());
    std::ostringstream ref;
    eng->react(); // boot
    for (int t = 0; t < kInstants; ++t) {
        for (const Ev& e : sched[static_cast<std::size_t>(t)]) {
            const SignalInfo& s =
                sema.signals[static_cast<std::size_t>(e.sig)];
            if (s.pure)
                eng->setInput(e.sig);
            else
                eng->setInputValue(
                    e.sig, Value::fromBytes(s.valueType, e.bytes.data()));
        }
        eng->react();
        ref << "t" << t << ":";
        for (const SignalInfo& s : sema.signals) {
            if (s.dir != SignalDir::Output) continue;
            if (!eng->outputPresent(s.index)) continue;
            ref << " " << s.name;
            if (s.pure) continue;
            Value v = eng->outputValue(s.index);
            if (s.valueType->isScalar()) {
                ref << "=" << v.toInt();
            } else {
                ref << "=";
                char buf[4];
                for (std::size_t i = 0; i < v.size(); ++i) {
                    std::snprintf(buf, sizeof buf, "%02x", v.data()[i]);
                    ref << buf;
                }
            }
        }
        ref << "\n";
    }

    // --- generated-C run: same schedule as straight-line driver code ---
    std::ostringstream drv;
    drv << "#include <stdio.h>\n"
        << "void ecl_runtime_error(const char *m)"
        << " { printf(\"TRAP %s\\n\", m); }\n"
        << generated << "\n";
    drv << "static void ecl_print(int t)\n{\n    printf(\"t%d:\", t);\n";
    for (const SignalInfo& s : sema.signals) {
        if (s.dir != SignalDir::Output) continue;
        if (s.pure) {
            drv << "    if (" << s.name << "_present) printf(\" " << s.name
                << "\");\n";
        } else if (s.valueType->isScalar()) {
            drv << "    if (" << s.name << "_present) printf(\" " << s.name
                << "=%lld\", (long long)" << s.name << ");\n";
        } else {
            drv << "    if (" << s.name << "_present) {\n"
                << "        unsigned j;\n"
                << "        printf(\" " << s.name << "=\");\n"
                << "        for (j = 0; j < sizeof " << s.name
                << "; j++)\n"
                << "            printf(\"%02x\", ((const unsigned char *)&"
                << s.name << ")[j]);\n    }\n";
        }
    }
    drv << "    printf(\"\\n\");\n}\n\n";
    drv << "int main(void)\n{\n    " << gc.module << "_react(); /* boot */\n";
    for (int t = 0; t < kInstants; ++t) {
        for (const Ev& e : sched[static_cast<std::size_t>(t)]) {
            const SignalInfo& s =
                sema.signals[static_cast<std::size_t>(e.sig)];
            if (s.pure) {
                drv << "    " << gc.module << "_set_" << s.name << "();\n";
            } else if (s.valueType->isScalar()) {
                drv << "    " << gc.module << "_set_" << s.name << "("
                    << readScalar(e.bytes.data(), s.valueType) << "LL);\n";
            } else {
                drv << "    { static const unsigned char b[] = {";
                for (std::size_t i = 0; i < e.bytes.size(); ++i) {
                    if (i) drv << ",";
                    drv << static_cast<int>(e.bytes[i]);
                }
                drv << "}; memcpy(&" << s.name << ", b, sizeof b); "
                    << s.name << "_present = 1; }\n";
            }
        }
        drv << "    " << gc.module << "_react();\n    ecl_print(" << t
            << ");\n";
    }
    drv << "    return 0;\n}\n";

    std::string got = compileAndRunC(drv.str(), gc.module);
    ASSERT_NE(got, "<gcc failed>")
        << "host gcc could not compile the generated C for " << gc.module;
    ASSERT_NE(got, "<run failed>");
    EXPECT_EQ(got, ref.str()) << gc.module << " seed " << gc.seed;
    EXPECT_EQ(got.find("TRAP"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperModules, GeneratedCDifferentialTest,
    ::testing::Values(GenCCase{"stack", "assemble", 101},
                      GenCCase{"stack", "checkcrc", 102},
                      GenCCase{"stack", "prochdr", 103},
                      GenCCase{"stack", "toplevel", 104},
                      GenCCase{"buffer", "producer", 105},
                      GenCCase{"buffer", "playback", 106},
                      GenCCase{"buffer", "blinker", 107},
                      GenCCase{"buffer", "buffer_top", 108}));

TEST(GeneratedCExecTest, GeneratedCIsWarningCleanEnough)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    std::string generated = codegen::generateC(*mod);
    std::string dir = ::testing::TempDir();
    std::string cPath = dir + "ecl_gen_toplevel.c";
    {
        std::ofstream out(cPath);
        out << "void ecl_runtime_error(const char *m) { (void)m; }\n"
            << generated;
    }
    // -Wall but tolerate unused warnings (dead branches are expected in
    // automaton code); any hard error fails.
    std::string cmd = "gcc -std=c99 -fsyntax-only -Wall -Wno-unused " +
                      cPath + " 2>" + dir + "gcc_w.log";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
}

} // namespace
