// Native AOT backend differential suite: the C emitted by
// codegen::generateC() is compiled with the host C compiler, dlopened
// through rt::NativeModule, and driven behind the common ReactiveEngine
// interface — then compared bit-exactly (trace strings AND packed final
// state) against the -O2 bytecode VM over the paper modules, the
// committed scenario corpus, and a seeded generator sweep. Every test
// that needs a host C compiler skips cleanly when none is available;
// the fallback tests assert the graceful degradation contract itself.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/codegen/c_gen.h"
#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/corpus/corpus.h"
#include "src/corpus/program_gen.h"
#include "src/runtime/native_abi.h"
#include "src/runtime/native_module.h"
#include "src/support/strings.h"

namespace ecl {
namespace {

// The eight paper modules (both figures), with per-module stimulus seeds
// so no two modules see the same input stream.
struct PaperCase {
    const char* module;
    bool stack; ///< protocolStackSource vs audioBufferSource.
    unsigned stimSeed;
};

const PaperCase kPaperCases[] = {
    {"assemble", true, 101},   {"checkcrc", true, 102},
    {"prochdr", true, 103},    {"toplevel", true, 104},
    {"producer", false, 105},  {"playback", false, 106},
    {"blinker", false, 107},   {"buffer_top", false, 108},
};

std::shared_ptr<CompiledModule> compilePaper(const PaperCase& pc,
                                             int optLevel)
{
    Compiler compiler(pc.stack ? paper::protocolStackSource()
                               : paper::audioBufferSource());
    CompileOptions opts;
    opts.optLevel = optLevel;
    return compiler.compile(pc.module, opts);
}

/// True when makeEngine(EngineKind::Native) actually yields the native
/// backend on this machine (a host C compiler exists and the generated
/// C compiles). Probed once; every differential test skips otherwise.
bool nativeAvailable()
{
    static const bool avail = [] {
        auto mod = compilePaper(kPaperCases[6], 2); // blinker: smallest
        auto eng = mod->makeEngine(EngineKind::Native);
        return std::string(eng->backendName()) == "native";
    }();
    return avail;
}

#define REQUIRE_NATIVE()                                                    \
    if (!nativeAvailable())                                                 \
    GTEST_SKIP() << "no host C compiler; native backend unavailable"

/// A compiler usable for standalone syntax checks of the emitted TU.
std::string syntaxCheckCompiler()
{
    if (const char* cc = std::getenv("CC"); cc && *cc) return cc;
    for (const char* cand : {"cc", "gcc", "clang"}) {
        std::string probe =
            std::string(cand) + " --version >/dev/null 2>&1";
        if (std::system(probe.c_str()) == 0) return cand;
    }
    return "";
}

/// Scoped env var override that restores the previous value on exit.
class ScopedEnv {
public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        if (const char* old = std::getenv(name)) {
            hadOld_ = true;
            old_ = old;
        }
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (hadOld_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

private:
    const char* name_;
    bool hadOld_ = false;
    std::string old_;
};

std::filesystem::path freshTempDir(const std::string& tag)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("ecl_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    return dir;
}

// ---------------------------------------------------------------------------
// The emitted translation unit itself: compiles standalone, warning-clean.
// ---------------------------------------------------------------------------

TEST(NativeCodegen, GeneratedCIsWarningCleanC99)
{
    std::string cc = syntaxCheckCompiler();
    if (cc.empty()) GTEST_SKIP() << "no host C compiler on PATH";
    auto dir = freshTempDir("cgen_syntax");
    for (const PaperCase& pc : kPaperCases) {
        auto mod = compilePaper(pc, 2);
        ASSERT_TRUE(mod->hasFlatProgram()) << pc.module;
        std::string c = codegen::generateC(*mod);
        auto cPath = dir / (std::string(pc.module) + ".c");
        auto logPath = dir / (std::string(pc.module) + ".log");
        { std::ofstream(cPath) << c; }
        std::string cmd = cc + " -std=c99 -fsyntax-only -Wall -Wextra '" +
                          cPath.string() + "' 2>'" + logPath.string() + "'";
        EXPECT_EQ(std::system(cmd.c_str()), 0) << pc.module;
        std::ifstream log(logPath);
        std::string diag((std::istreambuf_iterator<char>(log)),
                         std::istreambuf_iterator<char>());
        EXPECT_TRUE(diag.empty())
            << pc.module << " generated C warns:\n"
            << diag;
    }
    std::filesystem::remove_all(dir);
}

TEST(NativeCodegen, ModuleInfoMatchesCompiledShape)
{
    REQUIRE_NATIVE();
    auto mod = compilePaper(kPaperCases[3], 2); // toplevel
    auto eng = mod->makeEngine(EngineKind::Native);
    ASSERT_STREQ(eng->backendName(), "native");
    auto* native = dynamic_cast<rt::NativeEngine*>(eng.get());
    ASSERT_NE(native, nullptr);
    const rt::EclNativeInfo& info = native->nativeModule().info();
    EXPECT_EQ(info.abi_version, rt::kEclNativeAbiVersion);
    rt::InstanceLayout layout =
        rt::computeInstanceLayout(mod->moduleSema());
    EXPECT_EQ(info.data_bytes, layout.dataBytes);
    EXPECT_EQ(info.signals, mod->moduleSema().signals.size());
    EXPECT_STREQ(info.module_name, "toplevel");
    EXPECT_FALSE(native->nativeModule().objectPath().empty());
}

// ---------------------------------------------------------------------------
// Differential: native vs the -O2 bytecode VM, bit-exact.
// ---------------------------------------------------------------------------

TEST(NativeDifferential, PaperModulesMatchO2Vm)
{
    REQUIRE_NATIVE();
    const corpus::Profile profiles[] = {corpus::Profile::Random,
                                        corpus::Profile::Payload,
                                        corpus::Profile::Bursty};
    for (const PaperCase& pc : kPaperCases) {
        auto mod = compilePaper(pc, 2);
        ASSERT_TRUE(mod->hasFlatProgram()) << pc.module;
        for (corpus::Profile profile : profiles) {
            auto native = mod->makeEngine(EngineKind::Native);
            ASSERT_STREQ(native->backendName(), "native") << pc.module;
            auto vm = mod->makeSyncEngine();
            std::string traceN =
                corpus::runStimulus(*native, profile, pc.stimSeed, 160);
            std::string traceV =
                corpus::runStimulus(*vm, profile, pc.stimSeed, 160);
            EXPECT_EQ(traceN, traceV)
                << pc.module << " diverged from the -O2 VM under "
                << corpus::profileName(profile);
            // Same compile => same flat state ids and the same packed
            // instance layout: the full snapshot must match byte for
            // byte, not just the sampled outputs.
            EXPECT_EQ(native->packState(), vm->packState())
                << pc.module << " final state diverged under "
                << corpus::profileName(profile);
        }
    }
}

TEST(NativeDifferential, AotAtO0MatchesAotAtO2)
{
    REQUIRE_NATIVE();
    for (const PaperCase& pc : kPaperCases) {
        auto modO0 = compilePaper(pc, 0);
        auto modO2 = compilePaper(pc, 2);
        auto engO0 = modO0->makeEngine(EngineKind::Native);
        auto engO2 = modO2->makeEngine(EngineKind::Native);
        ASSERT_STREQ(engO0->backendName(), "native") << pc.module;
        ASSERT_STREQ(engO2->backendName(), "native") << pc.module;
        // State ids differ across opt levels (state minimization), so
        // compare observable behavior: the full sampled trace.
        EXPECT_EQ(corpus::runStimulus(*engO0, corpus::Profile::Random,
                                      pc.stimSeed, 160),
                  corpus::runStimulus(*engO2, corpus::Profile::Random,
                                      pc.stimSeed, 160))
            << pc.module << " AOT(-O0) diverged from AOT(-O2)";
    }
}

TEST(NativeDifferential, CorpusSweepBitExact)
{
    REQUIRE_NATIVE();
    auto scenarios = corpus::loadCorpusDir(ECL_CORPUS_DIR);
    ASSERT_FALSE(scenarios.empty());
    auto quarantined = corpus::loadQuarantine(ECL_CORPUS_DIR);
    unsigned swept = 0;
    for (const corpus::Scenario& s : scenarios) {
        bool parked = false;
        for (const std::string& q : quarantined)
            if (q == s.name) parked = true;
        if (parked) continue;
        auto mod = corpus::compileScenario(s, 2);
        auto native = mod->makeEngine(EngineKind::Native);
        ASSERT_STREQ(native->backendName(), "native")
            << s.name << ": native backend fell back to the VM";
        std::string traceN =
            corpus::runStimulus(*native, s.profile, s.stimSeed, s.instants);
        // Pinned oracle digest (the tree-walk trace) — the strongest
        // cross-version pin the corpus carries.
        EXPECT_EQ(hex64(fnv1a64(traceN)), s.oracleDigest)
            << s.name << " native trace diverged from the pinned oracle";
        // And bit-exact final data against a fresh -O2 VM run.
        auto vm = mod->makeSyncEngine();
        std::string traceV =
            corpus::runStimulus(*vm, s.profile, s.stimSeed, s.instants);
        EXPECT_EQ(traceN, traceV) << s.name;
        EXPECT_EQ(native->packState(), vm->packState()) << s.name;
        ++swept;
    }
    EXPECT_GE(swept, 20u);
}

TEST(NativeDifferential, GeneratorSweepMatchesVm)
{
    REQUIRE_NATIVE();
    unsigned nativeRuns = 0;
    for (unsigned seed = 1; seed <= 16; ++seed) {
        corpus::ProgramGen gen(seed, 3);
        Compiler compiler(gen.generate());
        CompileOptions opts;
        opts.optLevel = 2;
        auto mod = compiler.compile("m", opts);
        if (!mod->hasFlatProgram()) continue; // flatten degraded: no AOT
        auto native = mod->makeEngine(EngineKind::Native);
        EXPECT_STREQ(native->backendName(), "native")
            << "seed " << seed << " fell back to the VM";
        auto vm = mod->makeSyncEngine();
        std::string traceN = corpus::runStimulus(
            *native, corpus::Profile::Random, seed, 120);
        std::string traceV =
            corpus::runStimulus(*vm, corpus::Profile::Random, seed, 120);
        EXPECT_EQ(traceN, traceV) << "seed " << seed;
        if (std::string(native->backendName()) == "native") {
            EXPECT_EQ(native->packState(), vm->packState())
                << "seed " << seed;
            ++nativeRuns;
        }
    }
    EXPECT_GE(nativeRuns, 14u);
}

// ---------------------------------------------------------------------------
// Trap parity: runtime failures must carry the VM's exact message.
// ---------------------------------------------------------------------------

TEST(NativeDifferential, DivisionByZeroTrapsLikeVm)
{
    REQUIRE_NATIVE();
    const char* src =
        "module m (input int v, output int o)\n"
        "{\n"
        "    while (1) {\n"
        "        await (v);\n"
        "        emit_v (o, 100 / v);\n"
        "    }\n"
        "}\n";
    Compiler compiler(src);
    auto mod = compiler.compile("m");
    auto native = mod->makeEngine(EngineKind::Native);
    ASSERT_STREQ(native->backendName(), "native");
    auto vm = mod->makeSyncEngine();

    auto trapMessage = [](rt::ReactiveEngine& eng) {
        eng.react(); // boot reaction reaches the await
        eng.setInputScalar("v", 0);
        try {
            eng.react();
        } catch (const EclError& e) {
            return std::string(e.what());
        }
        return std::string("(no trap)");
    };
    std::string msgN = trapMessage(*native);
    std::string msgV = trapMessage(*vm);
    EXPECT_EQ(msgN, msgV);
    EXPECT_NE(msgN.find("division by zero"), std::string::npos) << msgN;
}

// ---------------------------------------------------------------------------
// Graceful degradation: Native must never fail the caller.
// ---------------------------------------------------------------------------

TEST(NativeFallback, DisableEnvVarFallsBackToVm)
{
    ScopedEnv disable("ECL_NATIVE_DISABLE", "1");
    auto mod = compilePaper(kPaperCases[6], 2);
    auto eng = mod->makeEngine(EngineKind::Native);
    EXPECT_STREQ(eng->backendName(), "flat");
    // The fallback engine is fully functional.
    std::string trace =
        corpus::runStimulus(*eng, corpus::Profile::Random, 1, 40);
    EXPECT_FALSE(trace.empty());
}

TEST(NativeFallback, MissingCompilerFallsBackToVm)
{
    auto cache = freshTempDir("native_nocc");
    std::string cachePath = cache.string();
    ScopedEnv cc("CC", "/nonexistent/ecl-no-such-cc");
    ScopedEnv dir("ECL_NATIVE_CACHE_DIR", cachePath.c_str());
    auto mod = compilePaper(kPaperCases[6], 2);
    auto eng = mod->makeEngine(EngineKind::Native);
    EXPECT_STREQ(eng->backendName(), "flat");
    std::string trace =
        corpus::runStimulus(*eng, corpus::Profile::Random, 1, 40);
    EXPECT_FALSE(trace.empty());
    std::filesystem::remove_all(cache);
}

TEST(NativeFallback, NativeModuleBuildReportsCompilerError)
{
    auto cache = freshTempDir("native_badsrc");
    std::string cachePath = cache.string();
    ScopedEnv dir("ECL_NATIVE_CACHE_DIR", cachePath.c_str());
    if (syntaxCheckCompiler().empty())
        GTEST_SKIP() << "no host C compiler on PATH";
    EXPECT_THROW(rt::NativeModule::build("this is not C\n", "bad"),
                 EclError);
    std::filesystem::remove_all(cache);
}

} // namespace
} // namespace ecl
