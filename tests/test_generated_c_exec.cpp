// Strongest codegen validation: compile the generated C with the host gcc,
// run it against the paper's packet workload, and compare its observable
// outputs instant-by-instant with the in-process EFSM engine.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/codegen/c_gen.h"
#include "src/core/paper_sources.h"
#include "tests/ecl_test_util.h"

namespace {

using namespace ecl;

/// Builds an executable from the generated C plus a driver main() and
/// returns its stdout, or nullopt if the toolchain is unavailable.
std::string runGeneratedAssemble(const std::string& generated,
                                 const std::vector<std::uint8_t>& bytes)
{
    std::string dir = ::testing::TempDir();
    std::string cPath = dir + "ecl_gen_assemble.c";
    std::string exePath = dir + "ecl_gen_assemble.bin";

    std::ostringstream driver;
    driver << "#include <stdio.h>\n"
           << "void ecl_runtime_error(const char *m)"
           << " { printf(\"TRAP %s\\n\", m); }\n"
           << generated << "\n"
           << "int main(void)\n{\n"
           << "    static const unsigned char stream[] = {";
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        if (i) driver << ",";
        driver << static_cast<int>(bytes[i]);
    }
    driver << "};\n"
           << "    unsigned i;\n"
           << "    assemble_react(); /* boot */\n"
           << "    for (i = 0; i < sizeof stream; i++) {\n"
           << "        assemble_set_in_byte(stream[i]);\n"
           << "        assemble_react();\n"
           << "        if (outpkt_present) {\n"
           << "            unsigned j;\n"
           << "            printf(\"PKT@%u:\", i);\n"
           << "            for (j = 0; j < 8; j++)\n"
           << "                printf(\" %02x\", outpkt.raw.packet[j]);\n"
           << "            printf(\"\\n\");\n"
           << "        }\n"
           << "    }\n"
           << "    return 0;\n}\n";

    {
        std::ofstream out(cPath);
        out << driver.str();
    }
    std::string cmd = "gcc -std=c99 -O1 -o " + exePath + " " + cPath +
                      " 2>" + dir + "gcc_err.log";
    if (std::system(cmd.c_str()) != 0) return "<gcc failed>";

    std::string outPath = dir + "gen_out.txt";
    cmd = exePath + " > " + outPath;
    if (std::system(cmd.c_str()) != 0) return "<run failed>";
    std::ifstream in(outPath);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(GeneratedCExecTest, AssembleMatchesEngineOnPacketStream)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("assemble");
    std::string generated = codegen::generateC(*mod);

    // Two packets back to back plus a partial third.
    std::vector<std::uint8_t> stream;
    for (int p = 0; p < 2; ++p) {
        auto pkt = test::makePacket(paper::kAddrByte, p + 1);
        stream.insert(stream.end(), pkt.begin(), pkt.end());
    }
    stream.resize(stream.size() + 10, 0x42);

    // Reference run on the in-process engine.
    auto eng = mod->makeEngine();
    eng->react();
    std::ostringstream ref;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        eng->setInputScalar("in_byte", stream[i]);
        eng->react();
        if (eng->outputPresent("outpkt")) {
            Value pkt = eng->outputValue("outpkt");
            ref << "PKT@" << i << ":";
            char buf[8];
            for (int j = 0; j < 8; ++j) {
                std::snprintf(buf, sizeof buf, " %02x", pkt.data()[j]);
                ref << buf;
            }
            ref << "\n";
        }
    }

    std::string got = runGeneratedAssemble(generated, stream);
    ASSERT_NE(got, "<gcc failed>") << "host gcc could not compile the "
                                      "generated C";
    ASSERT_NE(got, "<run failed>");
    EXPECT_EQ(got, ref.str());
    EXPECT_EQ(got.find("TRAP"), std::string::npos);
}

TEST(GeneratedCExecTest, GeneratedCIsWarningCleanEnough)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    std::string generated = codegen::generateC(*mod);
    std::string dir = ::testing::TempDir();
    std::string cPath = dir + "ecl_gen_toplevel.c";
    {
        std::ofstream out(cPath);
        out << "void ecl_runtime_error(const char *m) { (void)m; }\n"
            << generated;
    }
    // -Wall but tolerate unused warnings (dead branches are expected in
    // automaton code); any hard error fails.
    std::string cmd = "gcc -std=c99 -fsyntax-only -Wall -Wno-unused " +
                      cPath + " 2>" + dir + "gcc_w.log";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
}

} // namespace
