/* Known-violating monitor for the audio buffer's buffer_top: asserts the
   speaker never turns on. speaker_on IS reachable (press play, feed a
   frame), so eclc --verify with this monitor must exit 3 with a
   counterexample — the CI fixture proving the violation path end to end. */
module mon_speaker_never_on (input pure speaker_on,
                             output pure violation)
{
    while (1) {
        await (speaker_on);
        emit (violation);
    }
}
