// Randomized concurrency/differential stress suite for the batch
// multi-instance runtime (src/runtime/batch_engine.h).
//
// For every (module, backend) pair the suite builds a single-threaded
// REFERENCE by driving N independent single engines (SyncEngine for the
// VM backend, NativeEngine for the AOT one) with a seeded mixed
// sparse/dense stimulus, recording each instant's reacted set, full
// ReactionResults and the final packed state of every instance. Batch
// engines at every thread count — including more threads than the
// machine has cores — must then reproduce the reference bit-exactly:
// reacted flags, outputs, ExecCounters, the merged step-event stream
// (ascending instance order, per-instance emission order preserved) and
// packed final state. A separate determinism pin compares the
// concatenated event streams across thread counts directly, and a drain
// test proves stepDrain(k) is output- and state-equivalent to k step()
// calls. Modules cover the paper designs and full-kernel-grammar
// generated programs (tests/ecl_program_gen.h).
//
// Tests named *Smoke* are the fast subset the ASan CI job runs; the
// TSan job runs the whole binary.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "tests/ecl_program_gen.h"

namespace {

using namespace ecl;
using test::ProgramGen;

// --- module corpus -----------------------------------------------------------

struct ModuleCase {
    const char* name;   ///< Display/test-parameter name.
    const char* paper;  ///< "stack"/"buffer", or nullptr for generated.
    const char* module; ///< Top module (paper sources).
    unsigned genSeed;   ///< ProgramGen seed when paper == nullptr.
};

std::shared_ptr<CompiledModule> compileCase(const ModuleCase& mc)
{
    if (mc.paper) {
        Compiler compiler(std::string(mc.paper) == std::string("stack")
                              ? paper::protocolStackSource()
                              : paper::audioBufferSource());
        return compiler.compile(mc.module);
    }
    ProgramGen gen(mc.genSeed);
    Compiler compiler(gen.generate());
    return compiler.compile("m"); // may throw (causality): caller skips
}

constexpr ModuleCase kModules[] = {
    {"stack_toplevel", "stack", "toplevel", 0},
    {"buffer_top", "buffer", "buffer_top", 0},
    {"gen5", nullptr, nullptr, 5},
    {"gen12", nullptr, nullptr, 12},
};

// --- seeded stimulus ---------------------------------------------------------

/// Mixed sparse/dense population: instance i's traffic class is i % 4 —
/// dense (every instant), bursty (5 on / 15 off), sparse (1 in 17),
/// idle (boot only).
bool classActive(std::size_t i, int t)
{
    switch (i % 4) {
    case 0: return true;
    case 1: return t % 20 < 5;
    case 2: return t % 17 == 0;
    default: return false;
    }
}

/// One instant's input draw for one instance, applied to a batch slot
/// and/or a single engine. The draw sequence depends only on the rng
/// state, so identical seeds reproduce identical stimuli on every side.
bool applyInputs(std::mt19937& rng, const ModuleSema& sema,
                 rt::BatchEngine* batch, std::size_t inst,
                 rt::ReactiveEngine* single)
{
    bool any = false;
    for (const SignalInfo& s : sema.signals) {
        if (s.dir != SignalDir::Input) continue;
        if ((rng() & 3u) != 0) continue; // present 1/4 of draws
        any = true;
        if (s.pure) {
            if (batch) batch->setInput(inst, s.index);
            if (single) single->setInput(s.index);
        } else {
            Value v(s.valueType);
            for (std::size_t b = 0; b < v.size(); ++b)
                v.data()[b] = static_cast<std::uint8_t>(rng());
            if (batch) batch->setInputValue(inst, s.index, v);
            if (single) single->setInputValue(s.index, std::move(v));
        }
    }
    return any;
}

unsigned instanceSeed(std::size_t i) // one rng stream per instance
{
    return static_cast<unsigned>(7000003 * i + 101);
}

int instantsFor(int instances)
{
    return instances >= 1000 ? 6 : instances >= 64 ? 16 : 40;
}

// --- reference (N independent single engines) --------------------------------

struct Reference {
    std::string backend; ///< Resolved backend name ("flat"/"native").
    /// Per instant: ascending reacted instance ids and their full
    /// reaction records (parallel arrays). Instant 0 is the boot step.
    std::vector<std::vector<std::uint32_t>> reacted;
    std::vector<std::vector<rt::ReactionResult>> results;
    std::vector<std::vector<std::uint8_t>> finalState;
};

std::unique_ptr<rt::ReactiveEngine>
makeSingle(const std::shared_ptr<CompiledModule>& mod, bool native)
{
    if (native) return mod->makeEngine(EngineKind::Native);
    return mod->makeSyncEngine(EngineKind::Flat);
}

Reference buildReference(const std::shared_ptr<CompiledModule>& mod,
                         std::size_t n, bool native, int instants)
{
    const ModuleSema& sema = mod->moduleSema();
    Reference ref;
    std::vector<std::unique_ptr<rt::ReactiveEngine>> engines;
    std::vector<std::mt19937> rngs;
    for (std::size_t i = 0; i < n; ++i) {
        engines.push_back(makeSingle(mod, native));
        rngs.emplace_back(instanceSeed(i));
    }
    ref.backend = engines[0]->backendName();

    for (int t = 0; t <= instants; ++t) {
        std::vector<std::uint32_t> reacted;
        std::vector<rt::ReactionResult> results;
        for (std::size_t i = 0; i < n; ++i) {
            bool run;
            if (t == 0) {
                run = true; // boot: fresh batch instances are all dirty
            } else {
                bool resume = engines[i]->needsAutoResume();
                bool any = classActive(i, t - 1) &&
                           applyInputs(rngs[i], sema, nullptr, i,
                                       engines[i].get());
                run = any || resume;
            }
            if (!run) continue;
            reacted.push_back(static_cast<std::uint32_t>(i));
            results.push_back(engines[i]->react());
        }
        ref.reacted.push_back(std::move(reacted));
        ref.results.push_back(std::move(results));
    }
    for (std::size_t i = 0; i < n; ++i)
        ref.finalState.push_back(engines[i]->packState());
    return ref;
}

// --- batch run + comparison --------------------------------------------------

void expectCountersEqual(const ExecCounters& a, const ExecCounters& b,
                         const char* where)
{
    EXPECT_EQ(a.exprOps, b.exprOps) << where;
    EXPECT_EQ(a.loads, b.loads) << where;
    EXPECT_EQ(a.stores, b.stores) << where;
    EXPECT_EQ(a.branches, b.branches) << where;
    EXPECT_EQ(a.calls, b.calls) << where;
    EXPECT_EQ(a.aggBytes, b.aggBytes) << where;
}

/// Runs the seeded stimulus through a batch engine at `threads` and
/// asserts bit-exactness against the reference; returns the full
/// concatenated event stream for cross-thread-count determinism pins.
std::vector<rt::BatchEngine::StepEvent>
runAndCompare(const std::shared_ptr<CompiledModule>& mod,
              const Reference& ref, std::size_t n, int threads, bool native,
              int instants)
{
    const ModuleSema& sema = mod->moduleSema();
    auto batch = mod->makeBatchEngine(
        n, {.threads = threads},
        native ? EngineKind::Native : EngineKind::Flat);
    EXPECT_EQ(ref.backend, batch->backendName());
    std::vector<std::mt19937> rngs;
    for (std::size_t i = 0; i < n; ++i) rngs.emplace_back(instanceSeed(i));

    std::vector<rt::BatchEngine::StepEvent> allEvents;
    for (int t = 0; t <= instants; ++t) {
        if (t > 0)
            for (std::size_t i = 0; i < n; ++i)
                if (classActive(i, t - 1))
                    applyInputs(rngs[i], sema, batch.get(), i, nullptr);
        const std::vector<std::uint32_t>& reacted =
            ref.reacted[static_cast<std::size_t>(t)];
        const std::vector<rt::ReactionResult>& results =
            ref.results[static_cast<std::size_t>(t)];
        EXPECT_EQ(batch->step(), reacted.size())
            << "t" << threads << " instant " << t;

        std::size_t cursor = 0; // walks the reference's reacted set
        for (std::size_t i = 0; i < n; ++i) {
            const bool expect =
                cursor < reacted.size() && reacted[cursor] == i;
            EXPECT_EQ(batch->reactedLastStep(i), expect)
                << "t" << threads << " inst " << i << " instant " << t;
            if (!expect) continue;
            const rt::ReactionResult& ro = results[cursor];
            const rt::ReactionResult& rb = batch->lastResult(i);
            EXPECT_EQ(rb.emittedOutputs, ro.emittedOutputs)
                << "t" << threads << " inst " << i << " instant " << t;
            EXPECT_EQ(rb.terminated, ro.terminated)
                << "t" << threads << " inst " << i << " instant " << t;
            EXPECT_EQ(rb.treeTests, ro.treeTests)
                << "t" << threads << " inst " << i << " instant " << t;
            EXPECT_EQ(rb.actionsRun, ro.actionsRun)
                << "t" << threads << " inst " << i << " instant " << t;
            EXPECT_EQ(rb.emitsRun, ro.emitsRun)
                << "t" << threads << " inst " << i << " instant " << t;
            expectCountersEqual(rb.dataCounters, ro.dataCounters, "batch");
            ++cursor;
        }
        EXPECT_EQ(cursor, reacted.size());

        // Merged event stream: the reference outputs in ascending
        // instance order, identical for every thread count.
        const auto& events = batch->lastStepEvents();
        std::size_t e = 0;
        for (std::size_t r = 0; r < reacted.size(); ++r)
            for (int sig : results[r].emittedOutputs) {
                if (e >= events.size()) {
                    ADD_FAILURE() << "event stream short: t" << threads
                                  << " instant " << t;
                    return allEvents;
                }
                EXPECT_EQ(events[e].instance, reacted[r])
                    << "t" << threads << " instant " << t;
                EXPECT_EQ(events[e].signal, sig)
                    << "t" << threads << " instant " << t;
                ++e;
            }
        EXPECT_EQ(e, events.size()) << "t" << threads << " instant " << t;
        allEvents.insert(allEvents.end(), events.begin(), events.end());
    }

    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(batch->packInstanceState(i), ref.finalState[i])
            << "t" << threads << " inst " << i;
    return allEvents;
}

// --- the matrix --------------------------------------------------------------

struct StressCase {
    ModuleCase mod;
    bool native;
};

void PrintTo(const StressCase& c, std::ostream* os)
{
    *os << c.mod.name << (c.native ? "/native" : "/vm");
}

class BatchStressTest : public ::testing::TestWithParam<StressCase> {
protected:
    /// Null when the generator produced a rejected program or the flat
    /// tables were not built — the caller GTEST_SKIPs.
    std::shared_ptr<CompiledModule> compileOrNull()
    {
        std::shared_ptr<CompiledModule> mod;
        try {
            mod = compileCase(GetParam().mod);
        } catch (const EclError&) {
            return nullptr;
        }
        return mod->hasFlatProgram() ? mod : nullptr;
    }

    /// Full sweep for one instance count: reference once, then every
    /// thread count (including oversubscribed: 8 > typical CI cores)
    /// compared to it and to each other (determinism pin).
    void sweepThreads(const std::shared_ptr<CompiledModule>& mod,
                      std::size_t n, std::initializer_list<int> threads)
    {
        const bool native = GetParam().native;
        const int instants = instantsFor(static_cast<int>(n));
        Reference ref = buildReference(mod, n, native, instants);
        std::vector<rt::BatchEngine::StepEvent> pinned;
        bool first = true;
        for (int t : threads) {
            auto events = runAndCompare(mod, ref, n, t, native, instants);
            if (first) {
                pinned = std::move(events);
                first = false;
                continue;
            }
            // Same seed => byte-identical output ordering at every
            // thread count.
            ASSERT_EQ(events.size(), pinned.size()) << "threads " << t;
            for (std::size_t k = 0; k < events.size(); ++k) {
                ASSERT_EQ(events[k].instance, pinned[k].instance)
                    << "threads " << t << " event " << k;
                ASSERT_EQ(events[k].signal, pinned[k].signal)
                    << "threads " << t << " event " << k;
            }
        }
    }
};

TEST_P(BatchStressTest, SmokeSingleInstanceAllThreadCounts)
{
    auto mod = compileOrNull();
    if (!mod) GTEST_SKIP() << "module unavailable (causality-rejected or no flat tables)";
    sweepThreads(mod, 1, {1, 2, 4, 8});
}

TEST_P(BatchStressTest, SmokeMidPopulationAllThreadCounts)
{
    auto mod = compileOrNull();
    if (!mod) GTEST_SKIP() << "module unavailable (causality-rejected or no flat tables)";
    sweepThreads(mod, 64, {1, 2, 4, 8});
}

TEST_P(BatchStressTest, LargePopulation)
{
    auto mod = compileOrNull();
    if (!mod) GTEST_SKIP() << "module unavailable (causality-rejected or no flat tables)";
    // 1000 instances crosses the adaptive-participation grain at every
    // thread count (1000 / 128 ≈ 7 shards wanted), so all workers really
    // run; instants are few to keep the TSan budget sane.
    sweepThreads(mod, 1000, {1, 4, 8});
}

TEST_P(BatchStressTest, StepDrainMatchesStepLoop)
{
    // stepDrain(k) (one worker-pool epoch) must be event- and
    // state-equivalent to k step() calls with no inputs in between —
    // auto-resume chains drain identically, and the merged stream is
    // sub-step major in ascending instance order on both sides.
    auto mod = compileOrNull();
    if (!mod) GTEST_SKIP() << "module unavailable (causality-rejected or no flat tables)";
    const bool native = GetParam().native;
    const ModuleSema& sema = mod->moduleSema();
    const std::size_t n = 64;
    const EngineKind kind = native ? EngineKind::Native : EngineKind::Flat;

    for (int threads : {1, 4}) {
        auto loop = mod->makeBatchEngine(n, {.threads = threads}, kind);
        auto drain = mod->makeBatchEngine(n, {.threads = threads}, kind);
        std::vector<std::mt19937> rngA, rngB;
        for (std::size_t i = 0; i < n; ++i) {
            rngA.emplace_back(instanceSeed(i));
            rngB.emplace_back(instanceSeed(i));
        }
        loop->step();
        drain->step();
        constexpr int kDrain = 4;
        for (int round = 0; round < 8; ++round) {
            for (std::size_t i = 0; i < n; ++i) {
                if (!classActive(i, round)) continue;
                applyInputs(rngA[i], sema, loop.get(), i, nullptr);
                applyInputs(rngB[i], sema, drain.get(), i, nullptr);
            }
            std::vector<rt::BatchEngine::StepEvent> loopEvents;
            std::size_t loopReactions = 0;
            for (int k = 0; k < kDrain; ++k) {
                loopReactions += loop->step();
                const auto& ev = loop->lastStepEvents();
                loopEvents.insert(loopEvents.end(), ev.begin(), ev.end());
            }
            const std::size_t drainReactions = drain->stepDrain(kDrain);
            const auto& drainEvents = drain->lastStepEvents();

            ASSERT_EQ(drainReactions, loopReactions)
                << "threads " << threads << " round " << round;
            ASSERT_EQ(drainEvents.size(), loopEvents.size())
                << "threads " << threads << " round " << round;
            for (std::size_t k = 0; k < drainEvents.size(); ++k) {
                ASSERT_EQ(drainEvents[k].instance, loopEvents[k].instance)
                    << "threads " << threads << " round " << round
                    << " event " << k;
                ASSERT_EQ(drainEvents[k].signal, loopEvents[k].signal)
                    << "threads " << threads << " round " << round
                    << " event " << k;
            }
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(drain->packInstanceState(i),
                          loop->packInstanceState(i))
                    << "threads " << threads << " round " << round
                    << " inst " << i;
                ASSERT_EQ(drain->pendingDirty(i), loop->pendingDirty(i))
                    << "threads " << threads << " round " << round
                    << " inst " << i;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BatchStressTest,
    ::testing::Values(StressCase{kModules[0], false},
                      StressCase{kModules[0], true},
                      StressCase{kModules[1], false},
                      StressCase{kModules[1], true},
                      StressCase{kModules[2], false},
                      StressCase{kModules[2], true},
                      StressCase{kModules[3], false},
                      StressCase{kModules[3], true}));

} // namespace
