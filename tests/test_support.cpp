// Unit tests for the support layer: PauseSet, diagnostics, string helpers.
#include <gtest/gtest.h>

#include "src/support/bitset.h"
#include "src/support/diagnostics.h"
#include "src/support/strings.h"

namespace {

using namespace ecl;

TEST(PauseSetTest, SetTestClear)
{
    PauseSet s;
    EXPECT_TRUE(s.empty());
    s.set(3);
    s.set(64);
    s.set(130);
    EXPECT_TRUE(s.test(3));
    EXPECT_TRUE(s.test(64));
    EXPECT_TRUE(s.test(130));
    EXPECT_FALSE(s.test(2));
    EXPECT_FALSE(s.test(63));
    EXPECT_EQ(s.count(), 3u);
    s.clear(64);
    EXPECT_FALSE(s.test(64));
    EXPECT_EQ(s.count(), 2u);
}

TEST(PauseSetTest, EqualityIsCanonical)
{
    // Setting and clearing a high bit must not change equality.
    PauseSet a;
    a.set(1);
    PauseSet b;
    b.set(200);
    b.set(1);
    b.clear(200);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(PauseSetTest, UnionIntersection)
{
    PauseSet a;
    a.set(1);
    a.set(70);
    PauseSet b;
    b.set(70);
    b.set(5);
    PauseSet u = a;
    u |= b;
    EXPECT_EQ(u.count(), 3u);
    PauseSet i = a;
    i &= b;
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(70));
    EXPECT_TRUE(a.intersects(b));
    PauseSet c;
    c.set(2);
    EXPECT_FALSE(a.intersects(c));
}

TEST(PauseSetTest, Subtract)
{
    PauseSet a;
    a.set(1);
    a.set(2);
    a.set(3);
    PauseSet b;
    b.set(2);
    a.subtract(b);
    EXPECT_TRUE(a.test(1));
    EXPECT_FALSE(a.test(2));
    EXPECT_TRUE(a.test(3));
}

TEST(PauseSetTest, ForEachInOrder)
{
    PauseSet s;
    s.set(100);
    s.set(1);
    s.set(65);
    std::vector<std::size_t> seen;
    s.forEach([&](std::size_t b) { seen.push_back(b); });
    EXPECT_EQ(seen, (std::vector<std::size_t>{1, 65, 100}));
    EXPECT_EQ(s.toString(), "{1,65,100}");
}

TEST(PauseSetTest, EmptyAfterClearAll)
{
    PauseSet s;
    s.set(40);
    s.clear(40);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s, PauseSet{});
}

TEST(DiagnosticsTest, CountsAndFormats)
{
    Diagnostics d;
    EXPECT_FALSE(d.hasErrors());
    d.warning({1, 2}, "watch out");
    EXPECT_FALSE(d.hasErrors());
    d.error({3, 4}, "boom");
    d.note({3, 5}, "context");
    EXPECT_TRUE(d.hasErrors());
    EXPECT_EQ(d.errorCount(), 1);
    std::string all = d.formatAll();
    EXPECT_NE(all.find("warning 1:2: watch out"), std::string::npos);
    EXPECT_NE(all.find("error 3:4: boom"), std::string::npos);
    EXPECT_NE(all.find("note 3:5: context"), std::string::npos);
    d.clear();
    EXPECT_FALSE(d.hasErrors());
    EXPECT_TRUE(d.all().empty());
}

TEST(DiagnosticsTest, EclErrorCarriesLocation)
{
    EclError e({7, 9}, "bad thing");
    EXPECT_NE(std::string(e.what()).find("7:9"), std::string::npos);
}

TEST(StringsTest, Join)
{
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"a"}, ", "), "a");
    EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringsTest, Indent)
{
    EXPECT_EQ(indent("a\nb", "  "), "  a\n  b");
    EXPECT_EQ(indent("a\n\nb", "  "), "  a\n\n  b"); // blank lines untouched
}

TEST(StringsTest, IsIdentifier)
{
    EXPECT_TRUE(isIdentifier("foo"));
    EXPECT_TRUE(isIdentifier("_a1"));
    EXPECT_FALSE(isIdentifier(""));
    EXPECT_FALSE(isIdentifier("1a"));
    EXPECT_FALSE(isIdentifier("a-b"));
}

TEST(StringsTest, CStringLiteral)
{
    EXPECT_EQ(cStringLiteral("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}

TEST(StringsTest, Padding)
{
    EXPECT_EQ(padLeft("7", 3), "  7");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("long", 2), "long");
}

} // namespace
