// Interpreter tests: byte-backed values (incl. union views), the C-subset
// evaluator, function calls, and failure injection (bounds, budgets).
#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/interp/eval.h"
#include "src/runtime/engine.h"
#include "src/sema/elaborate.h"
#include "src/sema/sema.h"

namespace {

using namespace ecl;

// --- value model --------------------------------------------------------------

TEST(ValueTest, ScalarEncodeDecode)
{
    TypeTable t;
    Value v = Value::fromInt(t.intType(), -5);
    EXPECT_EQ(v.toInt(), -5);
    Value u = Value::fromInt(t.uintType(), 0xfffffff0u);
    EXPECT_EQ(u.toInt(), 0xfffffff0); // zero-extended
    Value c = Value::fromInt(t.charType(), 0x80);
    EXPECT_EQ(c.toInt(), -128); // sign-extended
    Value b = Value::fromInt(t.boolType(), 42);
    EXPECT_EQ(b.toInt(), 1); // bool normalizes
}

TEST(ValueTest, LittleEndianLayout)
{
    TypeTable t;
    Value v = Value::fromInt(t.intType(), 0x01020304);
    EXPECT_EQ(v.data()[0], 0x04);
    EXPECT_EQ(v.data()[3], 0x01);
}

TEST(ValueTest, TruncationOnWrite)
{
    TypeTable t;
    Value v = Value::fromInt(t.ucharType(), 0x1ff);
    EXPECT_EQ(v.toInt(), 0xff);
}

TEST(ValueTest, ReadBytesLE)
{
    std::uint8_t bytes[2] = {0x34, 0x12};
    EXPECT_EQ(readBytesLE(bytes, 2), 0x1234);
}

// --- evaluator fixture ---------------------------------------------------------

/// Compiles a module and evaluates statements of its body one by one
/// against a store; gives tests a tiny "script host".
class EvalFixture {
public:
    explicit EvalFixture(const std::string& src)
    {
        program_ = parseEcl(src, diags_);
        sema_ = analyzeProgramDecls(program_, diags_);
        sema_.program = &program_;
        for (const ast::TopDeclPtr& d : program_.decls)
            if (d->kind == ast::DeclKind::Function) {
                const auto& fn = static_cast<const ast::FunctionDecl&>(*d);
                functions_.emplace(fn.name,
                                   analyzeFunction(fn, sema_, diags_));
            }
        flat_ = elaborate(program_, sema_, "m", diags_);
        moduleSema_ = std::make_unique<ModuleSema>(
            analyzeModule(*flat_, sema_, diags_));
        store_ = std::make_unique<Store>(moduleSema_->vars);
        env_ = std::make_unique<rt::SignalEnv>(*moduleSema_);
        eval_ = std::make_unique<Evaluator>(sema_, functions_,
                                            moduleSema_.get(), store_.get(),
                                            env_.get());
    }

    /// Executes all statements of the module body (must be data-only).
    void runBody()
    {
        for (const ast::StmtPtr& s : flat_->body->body) eval_->execStmt(*s);
    }

    std::int64_t var(const std::string& name)
    {
        return store_->at(moduleSema_->findVar(name)->index).toInt();
    }

    Value& rawVar(const std::string& name)
    {
        return store_->at(moduleSema_->findVar(name)->index);
    }

    Evaluator& eval() { return *eval_; }

private:
    Diagnostics diags_;
    ast::Program program_;
    ProgramSema sema_;
    rt::FunctionSemaMap functions_;
    std::unique_ptr<ast::ModuleDecl> flat_;
    std::unique_ptr<ModuleSema> moduleSema_;
    std::unique_ptr<Store> store_;
    std::unique_ptr<rt::SignalEnv> env_;
    std::unique_ptr<Evaluator> eval_;
};

TEST(EvalTest, ArithmeticAndPrecedence)
{
    EvalFixture f("module m (input pure x) { int a; int b;\n"
                  "a = 2 + 3 * 4; b = (a - 4) / 5 + a % 7; }");
    f.runBody();
    EXPECT_EQ(f.var("a"), 14);
    EXPECT_EQ(f.var("b"), 2 + 0);
}

TEST(EvalTest, CompoundAssignAndIncDec)
{
    EvalFixture f("module m (input pure x) { int a; int b;\n"
                  "a = 10; a += 5; a <<= 1; b = a++; b = b + a--; }");
    f.runBody();
    EXPECT_EQ(f.var("a"), 30);
    EXPECT_EQ(f.var("b"), 30 + 31);
}

TEST(EvalTest, ShortCircuit)
{
    EvalFixture f("module m (input pure x) { int a; int hits;\n"
                  "hits = 0;\n"
                  "a = (0 && (hits = 1)) ? 5 : 6;\n"
                  "a = (1 || (hits = 1)) ? a : 0; }");
    f.runBody();
    EXPECT_EQ(f.var("hits"), 0); // right side never evaluated
    EXPECT_EQ(f.var("a"), 6);
}

TEST(EvalTest, UnionViewsShareBytes)
{
    EvalFixture f(R"(
typedef unsigned char byte;
typedef struct { byte packet[8]; } v1_t;
typedef struct { byte header[2]; byte data[6]; } v2_t;
typedef union { v1_t raw; v2_t cooked; } pkt_t;
module m (input pure x) {
    pkt_t p; int h0; int d3;
    p.raw.packet[0] = 17;
    p.raw.packet[5] = 99;
    h0 = p.cooked.header[0];
    d3 = p.cooked.data[3];
})");
    f.runBody();
    EXPECT_EQ(f.var("h0"), 17);
    EXPECT_EQ(f.var("d3"), 99);
}

TEST(EvalTest, AggregateCopySemantics)
{
    EvalFixture f(R"(
typedef struct { int v[2]; } box_t;
module m (input pure x) {
    box_t a; box_t b; int r;
    a.v[0] = 7; a.v[1] = 8;
    b = a;
    a.v[0] = 0;
    r = b.v[0] * 10 + b.v[1];
})");
    f.runBody();
    EXPECT_EQ(f.var("r"), 78); // deep copy, not aliasing
}

TEST(EvalTest, ArrayCastLittleEndian)
{
    EvalFixture f(R"(
typedef unsigned char byte;
typedef struct { byte crc[2]; } t_t;
module m (input pure x) {
    t_t v; int r;
    v.crc[0] = 0x34; v.crc[1] = 0x12;
    r = (int) v.crc;
})");
    f.runBody();
    EXPECT_EQ(f.var("r"), 0x1234);
}

TEST(EvalTest, PaperCrcFoldSemantics)
{
    // 32-bit wraparound on each store into `unsigned int crc`.
    EvalFixture f("module m (input pure x) { unsigned int crc; int i;\n"
                  "for (i = 0, crc = 1; i < 40; i++) {"
                  " crc = (crc ^ 0) << 1; } }");
    f.runBody();
    EXPECT_EQ(f.var("crc"), 0); // 1 << 40 wraps out of 32 bits
}

TEST(EvalTest, LoopsAndControlFlow)
{
    EvalFixture f("module m (input pure x) { int i; int sum;\n"
                  "sum = 0;\n"
                  "for (i = 0; i < 10; i++) {"
                  "  if (i == 3) continue;"
                  "  if (i == 7) break;"
                  "  sum += i; }\n"
                  "while (i > 0) { i--; }\n"
                  "do { i++; } while (i < 2); }");
    f.runBody();
    EXPECT_EQ(f.var("sum"), 0 + 1 + 2 + 4 + 5 + 6);
    EXPECT_EQ(f.var("i"), 2);
}

TEST(EvalTest, FunctionCallByValue)
{
    EvalFixture f(R"(
typedef struct { int v[2]; } box_t;
int sum(box_t b, int scale)
{
    b.v[0] = b.v[0] * scale; /* by value: caller unaffected */
    return b.v[0] + b.v[1];
}
module m (input pure x) {
    box_t a; int r; int keep;
    a.v[0] = 3; a.v[1] = 4;
    r = sum(a, 10);
    keep = a.v[0];
})");
    f.runBody();
    EXPECT_EQ(f.var("r"), 34);
    EXPECT_EQ(f.var("keep"), 3);
}

TEST(EvalTest, RecursionWithDepthLimit)
{
    EvalFixture f(R"(
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
module m (input pure x) { int r; r = fib(12); }
)");
    f.runBody();
    EXPECT_EQ(f.var("r"), 144);
}

TEST(EvalTest, DeepRecursionRejected)
{
    EvalFixture f("int down(int n) { if (n == 0) return 0;"
                  " return down(n - 1); }\n"
                  "module m (input pure x) { int r; r = down(1000); }");
    EXPECT_THROW(f.runBody(), EclError);
}

TEST(EvalTest, OutOfBoundsIndexRejected)
{
    EvalFixture f("typedef unsigned char byte;\n"
                  "module m (input pure x) { byte a[4]; int i;\n"
                  "i = 4; a[i] = 1; }");
    EXPECT_THROW(f.runBody(), EclError);
}

TEST(EvalTest, NegativeIndexRejected)
{
    EvalFixture f("typedef unsigned char byte;\n"
                  "module m (input pure x) { byte a[4]; int i;\n"
                  "i = -1; a[i] = 1; }");
    EXPECT_THROW(f.runBody(), EclError);
}

TEST(EvalTest, DivisionByZeroRejected)
{
    EvalFixture f("module m (input pure x) { int a; int b; b = 0;"
                  " a = 1 / b; }");
    EXPECT_THROW(f.runBody(), EclError);
}

TEST(EvalTest, OpBudgetStopsRunawayLoop)
{
    EvalFixture f("module m (input pure x) { int i; i = 0;\n"
                  "while (1) { i = i + 1; } }");
    f.eval().setOpBudget(10000);
    EXPECT_THROW(f.runBody(), EclError);
}

TEST(EvalTest, CountersTrackWork)
{
    EvalFixture f("module m (input pure x) { int i; int s; s = 0;\n"
                  "for (i = 0; i < 5; i++) { s += i; } }");
    f.runBody();
    const ExecCounters& c = f.eval().counters();
    EXPECT_GT(c.stores, 5u);
    EXPECT_GT(c.branches, 4u);
    EXPECT_GT(c.total(), 20u);
}

TEST(EvalTest, SizeofExpr)
{
    EvalFixture f("typedef struct { int a; int b; } two_t;\n"
                  "module m (input pure x) { two_t v; int r;\n"
                  "r = sizeof(v) + sizeof(int); }");
    f.runBody();
    EXPECT_EQ(f.var("r"), 12);
}

TEST(EvalTest, BoolNormalization)
{
    EvalFixture f("module m (input pure x) { bool b; int r;\n"
                  "b = 17; r = b + 1; }");
    f.runBody();
    EXPECT_EQ(f.var("r"), 2); // bool stores as 1
}

} // namespace
