// Lexer unit tests: tokens, literals, comments, macro expansion, errors.
#include <gtest/gtest.h>

#include "src/frontend/lexer.h"

namespace {

using namespace ecl;

std::vector<Token> lexOk(const std::string& src)
{
    Diagnostics diags;
    std::vector<Token> toks = lex(src, diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.formatAll();
    return toks;
}

std::vector<Tok> kinds(const std::vector<Token>& toks)
{
    std::vector<Tok> out;
    for (const Token& t : toks) out.push_back(t.kind);
    return out;
}

TEST(LexerTest, Keywords)
{
    auto toks = lexOk("module await emit emit_v halt present abort "
                      "weak_abort suspend handle par signal input output "
                      "pure");
    std::vector<Tok> expect = {
        Tok::KwModule, Tok::KwAwait,    Tok::KwEmit,    Tok::KwEmitV,
        Tok::KwHalt,   Tok::KwPresent,  Tok::KwAbort,   Tok::KwWeakAbort,
        Tok::KwSuspend, Tok::KwHandle,  Tok::KwPar,     Tok::KwSignal,
        Tok::KwInput,  Tok::KwOutput,   Tok::KwPure,    Tok::End};
    EXPECT_EQ(kinds(toks), expect);
}

TEST(LexerTest, OperatorsLongestMatch)
{
    auto toks = lexOk("<<= >>= << >> <= >= == != && || ++ -- += -= ^ ~");
    std::vector<Tok> expect = {Tok::ShlAssign, Tok::ShrAssign, Tok::Shl,
                               Tok::Shr,       Tok::Le,        Tok::Ge,
                               Tok::EqEq,      Tok::BangEq,    Tok::AmpAmp,
                               Tok::PipePipe,  Tok::PlusPlus,  Tok::MinusMinus,
                               Tok::PlusAssign, Tok::MinusAssign, Tok::Caret,
                               Tok::Tilde,     Tok::End};
    EXPECT_EQ(kinds(toks), expect);
}

TEST(LexerTest, IntegerLiterals)
{
    auto toks = lexOk("0 42 0x1f 0xFF 10u 10UL");
    EXPECT_EQ(toks[0].intValue, 0);
    EXPECT_EQ(toks[1].intValue, 42);
    EXPECT_EQ(toks[2].intValue, 31);
    EXPECT_EQ(toks[3].intValue, 255);
    EXPECT_EQ(toks[4].intValue, 10);
    EXPECT_EQ(toks[5].intValue, 10);
}

TEST(LexerTest, CharLiterals)
{
    auto toks = lexOk("'a' '\\n' '\\0' '\\\\'");
    EXPECT_EQ(toks[0].intValue, 'a');
    EXPECT_EQ(toks[1].intValue, '\n');
    EXPECT_EQ(toks[2].intValue, 0);
    EXPECT_EQ(toks[3].intValue, '\\');
}

TEST(LexerTest, Comments)
{
    auto toks = lexOk("a // line comment\nb /* block\n comment */ c");
    ASSERT_EQ(toks.size(), 4u); // a b c End
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
}

TEST(LexerTest, LineColumnTracking)
{
    auto toks = lexOk("a\n  b");
    EXPECT_EQ(toks[0].loc.line, 1);
    EXPECT_EQ(toks[0].loc.col, 1);
    EXPECT_EQ(toks[1].loc.line, 2);
    EXPECT_EQ(toks[1].loc.col, 3);
}

TEST(LexerTest, ObjectMacroExpansion)
{
    auto toks = lexOk("#define N 6\nint a[N];");
    // int a [ 6 ] ;
    ASSERT_GE(toks.size(), 6u);
    EXPECT_EQ(toks[3].kind, Tok::IntLit);
    EXPECT_EQ(toks[3].intValue, 6);
}

TEST(LexerTest, MacroReferencingMacros)
{
    auto toks = lexOk("#define A 1\n#define B 2\n#define SUM A+B\nSUM");
    // 1 + 2 End
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].intValue, 1);
    EXPECT_EQ(toks[1].kind, Tok::Plus);
    EXPECT_EQ(toks[2].intValue, 2);
}

TEST(LexerTest, PaperPktsizeMacro)
{
    auto toks = lexOk("#define HDRSIZE 6\n#define DATASIZE 56\n"
                      "#define CRCSIZE 2\n"
                      "#define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE\nPKTSIZE");
    ASSERT_EQ(toks.size(), 6u); // 6 + 56 + 2 End
    EXPECT_EQ(toks[0].intValue, 6);
    EXPECT_EQ(toks[2].intValue, 56);
    EXPECT_EQ(toks[4].intValue, 2);
}

TEST(LexerTest, RecursiveMacroReported)
{
    Diagnostics diags;
    lex("#define X X\nX", diags);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_NE(diags.formatAll().find("macro expansion too deep"),
              std::string::npos);
}

TEST(LexerTest, FunctionLikeMacroRejected)
{
    Diagnostics diags;
    lex("#define F(x) x\n", diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(LexerTest, UnknownDirectiveWarns)
{
    Diagnostics diags;
    lex("#ifdef FOO\nint a;\n", diags);
    EXPECT_FALSE(diags.hasErrors());
    bool warned = false;
    for (const Diagnostic& d : diags.all())
        if (d.severity == Severity::Warning) warned = true;
    EXPECT_TRUE(warned);
}

TEST(LexerTest, IncludeSilentlySkipped)
{
    Diagnostics diags;
    auto toks = lex("#include <stdio.h>\nint x;", diags);
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_EQ(toks[0].kind, Tok::KwInt);
}

TEST(LexerTest, MacroRedefinitionWarns)
{
    Diagnostics diags;
    lex("#define A 1\n#define A 2\n", diags);
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_NE(diags.formatAll().find("redefinition"), std::string::npos);
}

TEST(LexerTest, UnterminatedCommentError)
{
    Diagnostics diags;
    lex("/* never closed", diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(LexerTest, UnterminatedStringError)
{
    Diagnostics diags;
    lex("\"open", diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(LexerTest, UnexpectedCharacterError)
{
    Diagnostics diags;
    lex("int $x;", diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(LexerTest, StringEscapes)
{
    auto toks = lexOk(R"("a\n\"b")");
    EXPECT_EQ(toks[0].kind, Tok::StringLit);
    EXPECT_EQ(toks[0].text, "a\n\"b");
}

TEST(LexerTest, MacroUseSiteLocation)
{
    auto toks = lexOk("#define N 6\n\nN");
    EXPECT_EQ(toks[0].loc.line, 3); // reported where used, not defined
}

} // namespace
