// Cost model tests: AST sizing, cycle accounting, module size monotonicity.
#include <gtest/gtest.h>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/cost/cost.h"
#include "src/frontend/lexer.h"
#include "src/frontend/parser.h"

namespace {

using namespace ecl;

TEST(CostTest, ExprNodeCounting)
{
    Diagnostics diags;
    Parser p(lex("a + b * c[2].f", diags), diags);
    ast::ExprPtr e = p.parseExpressionOnly();
    // a, b, c, 2, index, member, mul, add => 8
    EXPECT_EQ(cost::countExprNodes(*e), 8u);
}

TEST(CostTest, StmtNodeCounting)
{
    Diagnostics diags;
    ast::Program prog = parseEcl(
        "void f(int n) { int i; for (i = 0; i < n; i++) { n += i; } }",
        diags);
    const auto& fn = static_cast<const ast::FunctionDecl&>(*prog.decls[0]);
    EXPECT_GT(cost::countStmtNodes(*fn.body), 8u);
}

TEST(CostTest, ReactionCyclesGrowWithWork)
{
    Compiler compiler("module m (input int v, output int o) {"
                      " int i; int s;"
                      " while (1) { await (v);"
                      "   for (i = 0, s = 0; i < 32; i++) { s += v; }"
                      "   emit_v (o, s); } }");
    auto mod = compiler.compile("m");
    auto eng = mod->makeEngine();
    cost::CostModel cm;
    std::uint64_t idle = cm.reactionCycles(eng->react());
    eng->setInputScalar("v", 2);
    std::uint64_t busy = cm.reactionCycles(eng->react());
    EXPECT_GT(busy, idle + 100); // the 32-iteration fold dominates
}

TEST(CostTest, ModuleSizeGrowsWithStates)
{
    Compiler small("module m (input pure t, output pure o) {"
                   " while (1) { await (t); emit (o); } }");
    Compiler large("module m (input pure t, output pure o) {"
                   " while (1) { await (t); await (t); await (t);"
                   " await (t); await (t); await (t); emit (o); } }");
    cost::CostModel cm;
    EXPECT_LT(cm.moduleSize(small.compile("m")->machine()).codeBytes,
              cm.moduleSize(large.compile("m")->machine()).codeBytes);
}

TEST(CostTest, SharedSubtreesNotDoubleCharged)
{
    // Two states with identical reactions: the DAG counter should charge
    // the decision structure once, so size grows sub-linearly.
    Compiler one("module m (input pure t, output pure o) {"
                 " while (1) { await (t); emit (o); } }");
    Compiler two("module m (input pure t, output pure o) {"
                 " while (1) { await (t); emit (o); await (t); emit (o); } }");
    cost::CostModel cm;
    std::size_t s1 = cm.moduleSize(one.compile("m")->machine()).codeBytes;
    std::size_t s2 = cm.moduleSize(two.compile("m")->machine()).codeBytes;
    // Far less than 2x: the two await-states have identical continuations.
    EXPECT_LT(s2, s1 + s1 / 2);
}

TEST(CostTest, ExtractedLoopChargedOnce)
{
    // The same data loop reachable from two control paths must be charged
    // one function body plus call sites.
    Compiler compiler("module m (input int v, input pure alt, output int o) {"
                      " int i; int s;"
                      " while (1) { await (v | alt);"
                      "   for (i = 0, s = 0; i < 64; i++) { s += i; }"
                      "   emit_v (o, s); } }");
    cost::CostModel cm;
    auto mod = compiler.compile("m");
    int extracted = 0;
    for (const auto& a : mod->reactiveProgram().actions)
        if (a.extractedLoop) ++extracted;
    EXPECT_EQ(extracted, 1);
    // Sanity: size stays modest even though the loop appears in many leaves.
    EXPECT_LT(cm.moduleSize(mod->machine()).codeBytes, 2000u);
}

TEST(CostTest, DataBytesIncludeVarsAndSignals)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("assemble");
    cost::CostModel cm;
    cost::CodeSize sz = cm.moduleSize(mod->machine());
    // buffer (64) + cnt (4) + state var + flags + value slots (in_byte 1,
    // outpkt 64).
    EXPECT_GE(sz.dataBytes, 64u + 4u + 4u + 3u + 65u);
}

TEST(CostTest, BaselineSizeSmallerCodeForBigMachines)
{
    // For the collapsed buffer_top, the interpreted baseline's code should
    // be much smaller than the expanded automaton (its price is time).
    Compiler compiler(paper::audioBufferSource());
    auto mod = compiler.compile("buffer_top");
    cost::CostModel cm;
    std::size_t efsmCode = cm.moduleSize(mod->machine()).codeBytes;
    std::size_t rcCode =
        cm.baselineSize(mod->reactiveProgram(), mod->moduleSema()).codeBytes;
    EXPECT_LT(rcCode, efsmCode);
}

TEST(CostTest, CyclesFasterForEfsmThanBaseline)
{
    Compiler compiler(paper::audioBufferSource());
    auto mod = compiler.compile("buffer_top");
    cost::CostModel cm;
    auto efsm = mod->makeEngine();
    auto rc = mod->makeBaselineEngine();
    efsm->react();
    rc->react();
    std::uint64_t e = 0;
    std::uint64_t r = 0;
    for (int t = 0; t < 50; ++t) {
        efsm->setInput("sample");
        rc->setInput("sample");
        e += cm.reactionCycles(efsm->react());
        r += cm.reactionCycles(rc->react());
    }
    EXPECT_LT(e, r);
}

} // namespace
