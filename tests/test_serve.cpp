// Serving-layer suite for src/serve (ShardedFleet).
//
// The core of the suite is differential: a fleet of sharded batch
// engines must be OBSERVATIONALLY IDENTICAL to the engines it is built
// from. One big BatchEngine and N independent single engines drive the
// same phase-shifted packet workload, and the fleet must reproduce the
// merged output-event stream, per-session emission counts and the final
// packed state of every session bit-for-bit — including when sessions
// are checkpointed, restored or live-migrated between shards
// mid-packet (the state-mobility contract: a moved session's subsequent
// outputs are bit-exact against an unmigrated control).
//
// The rest pins the serving contracts: typed admission control
// (FleetFull, Paused hysteresis against the queued-event high-water
// mark), typed submit rejection (UnknownSession, QueueFull, BadSignal,
// NotScalar), checkpoint envelope rejection (BadFormat, fingerprint
// mismatch across compiles, BadState rollback), queued-event forwarding
// after migration, rebalancing, and a multi-producer ingress test that
// hammers submitScalar() from several threads concurrently with step()
// — the lock-free ring + session-table path this suite exists to put
// under TSan (the TSan CI job runs this binary in full).
//
// ServeReplay checks the committed fixture
// tests/fixtures/fleet_session.eclrtrace (recorded by
// example_fleet --record-session): it must replay bit-exactly on a
// fresh engine AND a fleet session fed the same bytes must end in the
// identical packed state.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/runtime/trace.h"
#include "src/serve/fleet.h"

namespace {

using namespace ecl;

std::shared_ptr<CompiledModule> compileStack()
{
    Compiler compiler(paper::protocolStackSource());
    return compiler.compile("toplevel");
}

int sigIndex(const CompiledModule& mod, const char* name)
{
    const SignalInfo* s = mod.moduleSema().findSignal(name);
    EXPECT_NE(s, nullptr) << name;
    return s ? s->index : -1;
}

/// A packet the stack accepts end to end: matching address header,
/// recognizable payload prefix, zeroed CRC tail. Streaming all 64 bytes
/// into a session yields exactly one addr_match emission.
std::vector<std::uint8_t> goodPacket()
{
    std::vector<std::uint8_t> pkt(static_cast<std::size_t>(paper::kPktSize),
                                  0);
    for (int i = 0; i < paper::kHdrSize; ++i)
        pkt[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(paper::kAddrByte);
    for (int i = 0; i < 16; ++i)
        pkt[static_cast<std::size_t>(paper::kHdrSize + i)] =
            static_cast<std::uint8_t>(0x40 + i);
    return pkt;
}

/// (session-index, signal) pairs of one round, order-normalized so the
/// fleet's shard-major merge order can be compared against the batch
/// engine's ascending-instance order.
using EventSet = std::vector<std::pair<std::size_t, int>>;

EventSet normalize(EventSet ev)
{
    std::sort(ev.begin(), ev.end());
    return ev;
}

} // namespace

// ---------------------------------------------------------------------------
// Differential: fleet vs one big BatchEngine vs N single engines.
// ---------------------------------------------------------------------------

TEST(ServeDifferential, FleetMatchesBigBatchAndSingleEngines)
{
    auto mod = compileStack();
    const int inByte = sigIndex(*mod, "in_byte");
    const int match = sigIndex(*mod, "addr_match");
    const std::vector<std::uint8_t> pkt = goodPacket();

    constexpr std::size_t kSessions = 24;
    constexpr int kPhases = 5;
    const int instants = paper::kPktSize + kPhases + 8; // + delta drain

    serve::FleetOptions opts;
    opts.shards = 3;
    opts.threads = 2;
    opts.drainSteps = 1; // lockstep with the reference step() calls
    serve::ShardedFleet fleet(mod, opts);
    std::vector<serve::SessionId> ids;
    std::unordered_map<serve::SessionId, std::size_t> indexOf;
    for (std::size_t i = 0; i < kSessions; ++i) {
        const serve::AdmitResult r = fleet.admit();
        ASSERT_EQ(r.status, serve::AdmitStatus::Ok);
        ids.push_back(r.session);
        indexOf[r.session] = i;
    }

    auto batch = mod->makeBatchEngine(kSessions, rt::BatchOptions{1});
    std::vector<std::unique_ptr<rt::ReactiveEngine>> singles;
    for (std::size_t i = 0; i < kSessions; ++i)
        singles.push_back(mod->makeSyncEngine());

    // Boot every session/instance.
    batch->step();
    fleet.step();
    for (auto& e : singles) e->react();

    std::vector<std::uint64_t> fleetMatches(kSessions, 0);
    std::vector<std::uint64_t> batchMatches(kSessions, 0);
    std::vector<std::uint64_t> singleMatches(kSessions, 0);
    std::vector<serve::SessionEvent> fev;
    for (int t = 0; t < instants; ++t) {
        for (std::size_t i = 0; i < kSessions; ++i) {
            const int pos = t - static_cast<int>(i % kPhases);
            const bool hasByte = pos >= 0 && pos < paper::kPktSize;
            if (hasByte) {
                const auto b = static_cast<std::int64_t>(
                    pkt[static_cast<std::size_t>(pos)]);
                batch->setInputScalar(i, inByte, b);
                ASSERT_EQ(fleet.submitScalar(ids[i], inByte, b),
                          serve::SubmitStatus::Ok);
                singles[i]->setInputScalar(inByte, b);
                singles[i]->react();
            } else if (singles[i]->needsAutoResume()) {
                // Mirror the batch scheduler: instances react only when
                // dirty (staged input or pending auto-resume).
                singles[i]->react();
            } else {
                continue;
            }
            if (singles[i]->outputPresent(match)) ++singleMatches[i];
        }
        batch->step();
        fleet.step();

        EventSet be;
        for (const rt::BatchEngine::StepEvent& ev : batch->lastStepEvents()) {
            be.emplace_back(ev.instance, ev.signal);
            if (ev.signal == match) ++batchMatches[ev.instance];
        }
        EventSet fe;
        fev.clear();
        fleet.collectLastRoundEvents(fev);
        for (const serve::SessionEvent& ev : fev) {
            const std::size_t i = indexOf.at(ev.session);
            fe.emplace_back(i, ev.signal);
            if (ev.signal == match) ++fleetMatches[i];
        }
        ASSERT_EQ(normalize(std::move(fe)), normalize(std::move(be)))
            << "instant " << t;
    }
    ASSERT_FALSE(fleet.hasPendingTraffic());

    for (std::size_t i = 0; i < kSessions; ++i) {
        EXPECT_EQ(fleetMatches[i], 1u) << "session " << i;
        EXPECT_EQ(fleetMatches[i], batchMatches[i]) << "session " << i;
        EXPECT_EQ(fleetMatches[i], singleMatches[i]) << "session " << i;
        // Bit-exact packed state across all three execution shapes.
        const std::vector<std::uint8_t> fs = fleet.packSessionState(ids[i]);
        EXPECT_EQ(fs, batch->packInstanceState(i)) << "session " << i;
        EXPECT_EQ(fs, singles[i]->packState()) << "session " << i;
    }

    const serve::FleetStats st = fleet.stats();
    EXPECT_EQ(st.liveSessions, kSessions);
    EXPECT_EQ(st.admitted, kSessions);
    EXPECT_EQ(st.total(&serve::ShardStats::eventsApplied),
              static_cast<std::uint64_t>(kSessions) *
                  static_cast<std::uint64_t>(paper::kPktSize));
    EXPECT_EQ(st.pendingEvents, 0u);
}

TEST(ServeDifferential, NativeFleetMatchesVmFleet)
{
    auto mod = compileStack();
    serve::FleetOptions nopts;
    nopts.shards = 2;
    nopts.kind = EngineKind::Native;
    serve::ShardedFleet native(mod, nopts);
    if (std::string(native.shardEngine(0).backendName()) != "native")
        GTEST_SKIP() << "AOT native backend unavailable (VM fallback)";

    serve::FleetOptions vopts;
    vopts.shards = 2;
    serve::ShardedFleet vm(mod, vopts);
    const int inByte = sigIndex(*mod, "in_byte");
    const std::vector<std::uint8_t> pkt = goodPacket();

    std::vector<serve::SessionId> nid, vid;
    for (int i = 0; i < 6; ++i) {
        nid.push_back(native.admit().session);
        vid.push_back(vm.admit().session);
    }
    native.step();
    vm.step();
    for (int t = 0; t < paper::kPktSize; ++t) {
        for (int i = 0; i < 6; ++i) {
            const auto b = static_cast<std::int64_t>(
                pkt[static_cast<std::size_t>(t)]);
            ASSERT_EQ(native.submitScalar(nid[static_cast<std::size_t>(i)],
                                          inByte, b),
                      serve::SubmitStatus::Ok);
            ASSERT_EQ(vm.submitScalar(vid[static_cast<std::size_t>(i)],
                                      inByte, b),
                      serve::SubmitStatus::Ok);
        }
        native.step();
        vm.step();
    }
    native.drainAll();
    vm.drainAll();
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(native.packSessionState(nid[i]),
                  vm.packSessionState(vid[i]))
            << "session " << i;
}

// ---------------------------------------------------------------------------
// Checkpoint / restore.
// ---------------------------------------------------------------------------

TEST(ServeCheckpoint, RoundTripContinuesBitExact)
{
    auto mod = compileStack();
    const int inByte = sigIndex(*mod, "in_byte");
    const int match = sigIndex(*mod, "addr_match");
    const std::vector<std::uint8_t> pkt = goodPacket();

    serve::FleetOptions opts;
    opts.shards = 2;
    serve::ShardedFleet fleet(mod, opts);
    const serve::SessionId control = fleet.admit().session;
    const serve::SessionId subject = fleet.admit().session;
    fleet.step();

    // Feed both sessions half the packet, then snapshot the subject.
    constexpr int kSplit = paper::kPktSize / 2;
    for (int t = 0; t < kSplit; ++t) {
        const auto b =
            static_cast<std::int64_t>(pkt[static_cast<std::size_t>(t)]);
        fleet.submitScalar(control, inByte, b);
        fleet.submitScalar(subject, inByte, b);
        fleet.step();
    }
    const std::vector<std::uint8_t> ckpt = fleet.checkpointSession(subject);
    EXPECT_GT(ckpt.size(), 25u); // envelope + control word at minimum

    const serve::RestoreResult rr = fleet.restoreSession(ckpt);
    ASSERT_EQ(rr.status, serve::RestoreStatus::Ok);
    EXPECT_NE(rr.session, subject); // restored under a fresh id
    EXPECT_TRUE(fleet.isLive(rr.session));
    EXPECT_EQ(fleet.packSessionState(rr.session),
              fleet.packSessionState(subject));

    // Both the original and the restored copy finish the packet and
    // stay bit-exact against the untouched control at every instant.
    bool controlMatched = false, subjectMatched = false, restoredMatched = false;
    std::vector<serve::SessionEvent> ev;
    for (int t = kSplit; t < paper::kPktSize + 8; ++t) {
        if (t < paper::kPktSize) {
            const auto b =
                static_cast<std::int64_t>(pkt[static_cast<std::size_t>(t)]);
            fleet.submitScalar(control, inByte, b);
            fleet.submitScalar(subject, inByte, b);
            fleet.submitScalar(rr.session, inByte, b);
        }
        fleet.step();
        ev.clear();
        fleet.collectLastRoundEvents(ev);
        for (const serve::SessionEvent& e : ev) {
            if (e.signal != match) continue;
            if (e.session == control) controlMatched = true;
            if (e.session == subject) subjectMatched = true;
            if (e.session == rr.session) restoredMatched = true;
        }
    }
    EXPECT_TRUE(controlMatched);
    EXPECT_TRUE(subjectMatched);
    EXPECT_TRUE(restoredMatched);
    EXPECT_EQ(fleet.packSessionState(subject),
              fleet.packSessionState(control));
    EXPECT_EQ(fleet.packSessionState(rr.session),
              fleet.packSessionState(control));

    const serve::FleetStats st = fleet.stats();
    EXPECT_EQ(st.checkpoints, 1u);
    EXPECT_EQ(st.restores, 1u);
    EXPECT_THROW((void)fleet.checkpointSession(0xdead), EclError);
}

TEST(ServeCheckpoint, FingerprintMismatchRejected)
{
    auto stackMod = compileStack();
    Compiler bufCompiler(paper::audioBufferSource());
    auto bufMod = bufCompiler.compile("buffer_top");

    serve::ShardedFleet stackFleet(stackMod);
    serve::ShardedFleet bufFleet(bufMod);
    EXPECT_NE(stackFleet.fingerprint(), bufFleet.fingerprint());

    const serve::SessionId id = stackFleet.admit().session;
    stackFleet.step();
    const std::vector<std::uint8_t> ckpt = stackFleet.checkpointSession(id);

    const serve::RestoreResult rr = bufFleet.restoreSession(ckpt);
    EXPECT_EQ(rr.status, serve::RestoreStatus::FingerprintMismatch);
    EXPECT_EQ(bufFleet.stats().liveSessions, 0u);

    // Same compile in a different fleet instance: accepted.
    serve::ShardedFleet stackFleet2(stackMod);
    EXPECT_EQ(stackFleet2.restoreSession(ckpt).status,
              serve::RestoreStatus::Ok);
}

TEST(ServeCheckpoint, MalformedCheckpointsRejectedTyped)
{
    auto mod = compileStack();
    serve::ShardedFleet fleet(mod);
    const serve::SessionId id = fleet.admit().session;
    fleet.step();
    const std::vector<std::uint8_t> good = fleet.checkpointSession(id);

    // Not a checkpoint at all.
    const std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    EXPECT_EQ(fleet.restoreSession(garbage).status,
              serve::RestoreStatus::BadFormat);
    // Truncated and padded envelopes.
    EXPECT_EQ(fleet.restoreSession(good.data(), good.size() - 3).status,
              serve::RestoreStatus::BadFormat);
    std::vector<std::uint8_t> padded = good;
    padded.push_back(0);
    EXPECT_EQ(fleet.restoreSession(padded).status,
              serve::RestoreStatus::BadFormat);
    // Valid envelope, packed state inconsistent with this compile: the
    // slot allocated for the restore must be rolled back.
    std::vector<std::uint8_t> shortState = good;
    // State length field sits after magic(8)+version(4)+fingerprint(8)+
    // id(8)+flags(1); shrink the record to control word only.
    const std::size_t lenOff = 8 + 4 + 8 + 8 + 1;
    shortState.resize(lenOff);
    for (int i = 0; i < 4; ++i)
        shortState.push_back(i == 0 ? 4 : 0); // u32 length = 4
    for (int i = 0; i < 4; ++i) shortState.push_back(0); // control word
    EXPECT_EQ(fleet.restoreSession(shortState).status,
              serve::RestoreStatus::BadState);
    EXPECT_EQ(fleet.stats().liveSessions, 1u);
    // Fleet still serves after the rollback.
    EXPECT_EQ(fleet.admit().status, serve::AdmitStatus::Ok);
    EXPECT_EQ(fleet.restoreSession(good).status, serve::RestoreStatus::Ok);
}

// ---------------------------------------------------------------------------
// Live migration.
// ---------------------------------------------------------------------------

/// The acceptance pin: a session checkpoint-migrated between shards
/// mid-packet keeps producing outputs bit-exact against an unmigrated
/// control session fed the identical byte stream.
TEST(ServeMigration, MidStreamOutputsBitExactVsControl)
{
    auto mod = compileStack();
    const int inByte = sigIndex(*mod, "in_byte");
    const int match = sigIndex(*mod, "addr_match");
    const std::vector<std::uint8_t> pkt = goodPacket();

    serve::FleetOptions opts;
    opts.shards = 4;
    opts.threads = 2;
    serve::ShardedFleet fleet(mod, opts);
    const serve::SessionId control = fleet.admitOn(0).session;
    const serve::SessionId subject = fleet.admitOn(0).session;
    fleet.step();

    int controlInstant = -1, subjectInstant = -1;
    std::vector<serve::SessionEvent> ev;
    for (int t = 0; t < paper::kPktSize + 8; ++t) {
        if (t % 16 == 8) {
            // Quiesced live migration (no bytes submitted yet this
            // instant) — hop the subject across every shard over the
            // course of one packet.
            const auto [sh, slot] = fleet.locate(subject);
            const auto target =
                static_cast<std::uint32_t>((sh + 1) % fleet.shardCount());
            ASSERT_EQ(fleet.migrate(subject, target),
                      serve::MigrateStatus::Ok);
            ASSERT_EQ(fleet.locate(subject).first, target);
            // The move preserved the packed assembly state bit-exactly.
            ASSERT_EQ(fleet.packSessionState(subject),
                      fleet.packSessionState(control));
        }
        if (t < paper::kPktSize) {
            const auto b =
                static_cast<std::int64_t>(pkt[static_cast<std::size_t>(t)]);
            ASSERT_EQ(fleet.submitScalar(control, inByte, b),
                      serve::SubmitStatus::Ok);
            ASSERT_EQ(fleet.submitScalar(subject, inByte, b),
                      serve::SubmitStatus::Ok);
        }
        fleet.step();
        ev.clear();
        fleet.collectLastRoundEvents(ev);
        for (const serve::SessionEvent& e : ev) {
            if (e.signal != match) continue;
            if (e.session == control) controlInstant = t;
            if (e.session == subject) subjectInstant = t;
        }
    }
    EXPECT_GE(controlInstant, 0) << "control session never matched";
    EXPECT_EQ(subjectInstant, controlInstant)
        << "migrated session matched at a different instant";
    EXPECT_EQ(fleet.packSessionState(subject),
              fleet.packSessionState(control));

    const serve::FleetStats st = fleet.stats();
    EXPECT_EQ(st.migrations, 4u);
    EXPECT_EQ(st.total(&serve::ShardStats::migratedIn), 4u);
    EXPECT_EQ(st.total(&serve::ShardStats::migratedOut), 4u);
}

TEST(ServeMigration, QueuedEventsForwardedToNewShard)
{
    auto mod = compileStack();
    const int inByte = sigIndex(*mod, "in_byte");
    serve::FleetOptions opts;
    opts.shards = 2;
    serve::ShardedFleet fleet(mod, opts);
    const serve::SessionId id = fleet.admitOn(0).session;
    fleet.step();

    // Queue a byte on shard 0's ring, THEN migrate: the old shard's
    // worker re-resolves the event at dequeue and forwards it to the
    // new shard, where it is applied.
    ASSERT_EQ(fleet.submitScalar(id, inByte, paper::kAddrByte),
              serve::SubmitStatus::Ok);
    ASSERT_EQ(fleet.migrate(id, 1), serve::MigrateStatus::Ok);
    fleet.drainAll();

    const serve::FleetStats st = fleet.stats();
    EXPECT_EQ(st.shards[0].eventsForwarded, 1u);
    EXPECT_EQ(st.shards[1].eventsApplied, 1u);
    EXPECT_EQ(st.total(&serve::ShardStats::eventsDropped), 0u);

    // The forwarded byte reached the session: its state differs from a
    // fresh session that received nothing.
    const serve::SessionId fresh = fleet.admitOn(1).session;
    fleet.step();
    EXPECT_NE(fleet.packSessionState(id), fleet.packSessionState(fresh));
}

TEST(ServeMigration, StatusContracts)
{
    auto mod = compileStack();
    serve::FleetOptions opts;
    opts.shards = 2;
    serve::ShardedFleet fleet(mod, opts);
    const serve::SessionId id = fleet.admitOn(0).session;
    fleet.step();

    EXPECT_EQ(fleet.migrate(0xbeef, 1), serve::MigrateStatus::UnknownSession);
    EXPECT_EQ(fleet.migrate(id, 0), serve::MigrateStatus::SameShard);
    EXPECT_EQ(fleet.migrate(id, 7), serve::MigrateStatus::BadShard);
    EXPECT_EQ(fleet.migrate(id, 1), serve::MigrateStatus::Ok);
    EXPECT_EQ(fleet.locate(id).first, 1u);
    EXPECT_EQ(fleet.stats().migrations, 1u);

    // Ended sessions drop their queued events at dequeue.
    const int inByte = sigIndex(*mod, "in_byte");
    ASSERT_EQ(fleet.submitScalar(id, inByte, 1), serve::SubmitStatus::Ok);
    EXPECT_TRUE(fleet.endSession(id));
    EXPECT_FALSE(fleet.endSession(id));
    fleet.drainAll();
    EXPECT_EQ(fleet.stats().total(&serve::ShardStats::eventsDropped), 1u);
}

TEST(ServeMigration, RebalanceEvensOutLiveSessions)
{
    auto mod = compileStack();
    serve::FleetOptions opts;
    opts.shards = 3;
    serve::ShardedFleet fleet(mod, opts);
    std::vector<serve::SessionId> ids;
    for (int i = 0; i < 12; ++i)
        ids.push_back(fleet.admitOn(0).session); // all piled on shard 0
    fleet.step();

    const std::size_t moved = fleet.rebalance(100);
    EXPECT_EQ(moved, 8u); // 12/0/0 -> 4/4/4
    const serve::FleetStats st = fleet.stats();
    std::uint64_t mn = ~0ull, mx = 0;
    for (const serve::ShardStats& s : st.shards) {
        mn = std::min(mn, s.liveSessions);
        mx = std::max(mx, s.liveSessions);
    }
    EXPECT_LE(mx - mn, 1u);
    for (serve::SessionId id : ids) EXPECT_TRUE(fleet.isLive(id));
}

// ---------------------------------------------------------------------------
// Admission control and typed backpressure.
// ---------------------------------------------------------------------------

TEST(ServeAdmission, FleetFullUntilSessionsEnd)
{
    auto mod = compileStack();
    serve::FleetOptions opts;
    opts.shards = 2;
    opts.maxSessions = 4;
    serve::ShardedFleet fleet(mod, opts);
    std::vector<serve::SessionId> ids;
    for (int i = 0; i < 4; ++i) {
        const serve::AdmitResult r = fleet.admit();
        ASSERT_EQ(r.status, serve::AdmitStatus::Ok);
        ids.push_back(r.session);
    }
    EXPECT_EQ(fleet.admit().status, serve::AdmitStatus::FleetFull);
    EXPECT_EQ(fleet.stats().rejectedFull, 1u);

    EXPECT_TRUE(fleet.endSession(ids[0]));
    const serve::AdmitResult r = fleet.admit();
    EXPECT_EQ(r.status, serve::AdmitStatus::Ok);
    // The ended session's slot was parked and is reused, not grown past.
    EXPECT_EQ(fleet.stats().liveSessions, 4u);
}

TEST(ServeAdmission, PausedHysteresisOnQueuedBacklog)
{
    auto mod = compileStack();
    const int inByte = sigIndex(*mod, "in_byte");
    serve::FleetOptions opts;
    opts.queueCapacity = 64;
    opts.admitHighWater = 4;
    opts.admitLowWater = 2;
    serve::ShardedFleet fleet(mod, opts);
    const serve::SessionId id = fleet.admit().session;
    fleet.step();

    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(fleet.submitScalar(id, inByte, i),
                  serve::SubmitStatus::Ok);
    // Backlog at the high-water mark: admission pauses.
    EXPECT_EQ(fleet.admit().status, serve::AdmitStatus::Paused);
    EXPECT_TRUE(fleet.admissionPaused());
    EXPECT_EQ(fleet.stats().rejectedPaused, 1u);

    // Draining below high water is NOT enough — hysteresis holds the
    // pause until the backlog falls under the LOW-water mark.
    fleet.step(); // applies all 4 (one survives per-instant merge rules)
    ASSERT_EQ(fleet.submitScalar(id, inByte, 0), serve::SubmitStatus::Ok);
    ASSERT_EQ(fleet.submitScalar(id, inByte, 1), serve::SubmitStatus::Ok);
    ASSERT_EQ(fleet.submitScalar(id, inByte, 2), serve::SubmitStatus::Ok);
    EXPECT_EQ(fleet.admit().status, serve::AdmitStatus::Paused);
    fleet.drainAll();
    EXPECT_EQ(fleet.admit().status, serve::AdmitStatus::Ok);
    EXPECT_FALSE(fleet.admissionPaused());
}

TEST(ServeBackpressure, QueueFullIsTypedAndCounted)
{
    auto mod = compileStack();
    const int inByte = sigIndex(*mod, "in_byte");
    serve::FleetOptions opts;
    opts.queueCapacity = 4; // tiny ring (power of two)
    opts.admitHighWater = 1000; // keep admission out of the picture
    serve::ShardedFleet fleet(mod, opts);
    const serve::SessionId id = fleet.admit().session;
    fleet.step();

    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(fleet.submitScalar(id, inByte, i),
                  serve::SubmitStatus::Ok);
    EXPECT_EQ(fleet.submitScalar(id, inByte, 99),
              serve::SubmitStatus::QueueFull);
    EXPECT_EQ(fleet.stats().shards[0].rejectedQueueFull, 1u);

    // The documented backpressure response: advance the fleet, retry.
    fleet.step();
    EXPECT_EQ(fleet.submitScalar(id, inByte, 99), serve::SubmitStatus::Ok);
    fleet.drainAll();
}

TEST(ServeSubmit, TypedRejections)
{
    auto mod = compileStack();
    const int inByte = sigIndex(*mod, "in_byte");
    const int match = sigIndex(*mod, "addr_match");
    serve::ShardedFleet fleet(mod);
    const serve::SessionId id = fleet.admit().session;
    fleet.step();

    EXPECT_EQ(fleet.submitScalar(0xbeef, inByte, 1),
              serve::SubmitStatus::UnknownSession);
    // Outputs are not submittable.
    EXPECT_EQ(fleet.submit(id, match), serve::SubmitStatus::BadSignal);
    EXPECT_EQ(fleet.submitScalar(id, -1, 0), serve::SubmitStatus::BadSignal);
    // Pure inputs take submit(), not submitScalar().
    const SignalInfo* reset = mod->moduleSema().findSignal("reset");
    ASSERT_NE(reset, nullptr);
    ASSERT_TRUE(reset->pure);
    EXPECT_EQ(fleet.submitScalar(id, reset->index, 1),
              serve::SubmitStatus::NotScalar);
    EXPECT_EQ(fleet.submit(id, reset->index), serve::SubmitStatus::Ok);
    fleet.drainAll();

    // Ended sessions reject immediately at submit.
    EXPECT_TRUE(fleet.endSession(id));
    EXPECT_EQ(fleet.submitScalar(id, inByte, 1),
              serve::SubmitStatus::UnknownSession);
    EXPECT_FALSE(fleet.isLive(id));
    EXPECT_THROW((void)fleet.locate(id), EclError);
}

// ---------------------------------------------------------------------------
// Multi-producer ingress (the TSan target of this suite).
// ---------------------------------------------------------------------------

TEST(ServeIngress, MultiProducerConcurrentWithStepping)
{
    auto mod = compileStack();
    const int inByte = sigIndex(*mod, "in_byte");
    constexpr std::size_t kSessions = 256;
    constexpr int kProducers = 4;
    constexpr int kBytesPerSession = 16;

    serve::FleetOptions opts;
    opts.shards = 4;
    opts.threads = 2;
    opts.queueCapacity = 128; // small on purpose: exercise QueueFull
    serve::ShardedFleet fleet(mod, opts);
    std::vector<serve::SessionId> ids;
    for (std::size_t i = 0; i < kSessions; ++i)
        ids.push_back(fleet.admit().session);
    fleet.step();

    // Producers hammer the lock-free submit path — session-table reads
    // plus ring pushes — concurrently with the control thread stepping
    // the fleet (the documented any-thread/any-time data-plane
    // contract). Every producer owns a session slice and retries
    // QueueFull by yielding, so exactly kSessions * kBytesPerSession
    // events are accepted in total.
    std::atomic<int> running{kProducers};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&, p] {
            for (int t = 0; t < kBytesPerSession; ++t)
                for (std::size_t i = static_cast<std::size_t>(p);
                     i < kSessions; i += kProducers) {
                    while (fleet.submitScalar(ids[i], inByte,
                                              0x40 + (t & 0x3f)) ==
                           serve::SubmitStatus::QueueFull)
                        std::this_thread::yield();
                }
            running.fetch_sub(1, std::memory_order_release);
        });
    while (running.load(std::memory_order_acquire) > 0) fleet.step();
    for (std::thread& th : producers) th.join();
    fleet.drainAll();

    const serve::FleetStats st = fleet.stats();
    EXPECT_EQ(st.total(&serve::ShardStats::eventsApplied),
              static_cast<std::uint64_t>(kSessions) * kBytesPerSession);
    EXPECT_EQ(st.total(&serve::ShardStats::eventsDropped), 0u);
    EXPECT_EQ(st.pendingEvents, 0u);
    EXPECT_GT(st.reactions, 0u);
    // Every session saw at least one byte instant.
    for (serve::SessionId id : ids) EXPECT_TRUE(fleet.isLive(id));
}

// ---------------------------------------------------------------------------
// Committed replay fixture.
// ---------------------------------------------------------------------------

#ifdef ECL_FIXTURE_DIR
TEST(ServeReplay, CommittedFleetSessionTraceReplaysBitExact)
{
    const std::string path =
        std::string(ECL_FIXTURE_DIR) + "/fleet_session.eclrtrace";
    const rt::InputTrace trace = rt::readTraceFile(path);
    auto mod = compileStack();

    // The recording replays bit-exactly on a fresh single engine.
    auto sync = mod->makeSyncEngine();
    const rt::TraceReplayResult syncRes = rt::replayTrace(*sync, trace);
    EXPECT_TRUE(syncRes.outputsMatch) << syncRes.mismatch;

    // ...and on a fresh batch-engine instance.
    auto batch = mod->makeBatchEngine(2, rt::BatchOptions{1});
    const rt::TraceReplayResult batchRes = rt::replayTrace(*batch, 0, trace);
    EXPECT_TRUE(batchRes.outputsMatch) << batchRes.mismatch;
    EXPECT_EQ(batchRes.finalState, syncRes.finalState);

    // A fleet session fed the same byte stream ends in the identical
    // packed state — the committed fixture IS one fleet session's load.
    const int inByte = sigIndex(*mod, "in_byte");
    serve::FleetOptions opts;
    opts.shards = 2;
    serve::ShardedFleet fleet(mod, opts);
    const serve::SessionId id = fleet.admit().session;
    const std::vector<std::uint8_t> pkt = goodPacket();
    fleet.step();
    for (int t = 0; t < paper::kPktSize; ++t) {
        ASSERT_EQ(fleet.submitScalar(
                      id, inByte,
                      static_cast<std::int64_t>(
                          pkt[static_cast<std::size_t>(t)])),
                  serve::SubmitStatus::Ok);
        fleet.step();
    }
    fleet.drainAll();
    EXPECT_EQ(fleet.packSessionState(id), syncRes.finalState);
}
#endif
