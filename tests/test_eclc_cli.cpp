// Integration tests for the eclc CLI, asserting the documented exit-code
// contract (src/core/eclc_main.cpp):
//   0 success / verified complete, 1 compile errors, 2 usage errors,
//   3 verification violation, 4 verification bound reached.
// The binary path comes from CMake (ECL_ECLC_PATH = $<TARGET_FILE:eclc>).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/wait.h>

namespace {

std::string eclcPath() { return ECL_ECLC_PATH; }

int runEclc(const std::string& args)
{
    const std::string cmd =
        eclcPath() + " " + args + " > /dev/null 2> /dev/null";
    const int status = std::system(cmd.c_str());
    if (status == -1) return -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    return -2;
}

/// Like runEclc but also captures stdout (stderr still discarded), for
/// pinning the human-readable contract lines next to the exit codes.
int runEclcCapture(const std::string& args, std::string& out)
{
    const std::string cmd = eclcPath() + " " + args + " 2> /dev/null";
    FILE* pipe = popen(cmd.c_str(), "r");
    if (!pipe) return -1;
    out.clear();
    char buf[256];
    while (fgets(buf, sizeof buf, pipe)) out += buf;
    const int status = pclose(pipe);
    if (status == -1) return -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    return -2;
}

std::string writeTemp(const std::string& name, const std::string& content)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
}

const char* kSpeakerMonitor =
    "module mon (input pure speaker_on, output pure violation) {\n"
    "  while (1) { await (speaker_on); emit (violation); }\n"
    "}\n";

TEST(EclcCli, UsageErrorsExit2)
{
    EXPECT_EQ(runEclc(""), 2);
    EXPECT_EQ(runEclc("--bogus-flag whatever.ecl"), 2);
    EXPECT_EQ(runEclc("--paper nosuch"), 2);
    // --verify conflicts with --async.
    EXPECT_EQ(runEclc("--paper stack --verify --async"), 2);
    // A file AND --paper is ambiguous.
    EXPECT_EQ(runEclc("--paper stack somefile.ecl"), 2);
    // Verify-only flags without --verify would be silently ignored;
    // exit 0 must never be mistakable for "verified".
    EXPECT_EQ(runEclc("--paper buffer --depth 5"), 2);
    EXPECT_EQ(runEclc("--paper buffer --monitor nope.ecl"), 2);
    EXPECT_EQ(runEclc("--paper buffer --dfs"), 2);
    // --max-states must fit the explorer's 32-bit id space.
    EXPECT_EQ(runEclc("--paper buffer --verify --max-states 4294967296"),
              2);
}

TEST(EclcCli, CompileErrorsExit1)
{
    EXPECT_EQ(runEclc("/nonexistent/path.ecl"), 1);
    const std::string parseErr =
        writeTemp("eclc_parse_err.ecl", "module m ( {");
    EXPECT_EQ(runEclc(parseErr), 1);
    const std::string semaErr = writeTemp(
        "eclc_sema_err.ecl",
        "module m (input pure a, output pure b) {"
        " while (1) { await (a); emit (no_such_signal); } }");
    EXPECT_EQ(runEclc(semaErr), 1);
    // Compile errors rank the same under --verify.
    EXPECT_EQ(runEclc(parseErr + " --verify"), 1);
}

TEST(EclcCli, EmitSucceedsExit0)
{
    EXPECT_EQ(runEclc("--paper stack --emit stats"), 0);
    EXPECT_EQ(runEclc("--paper buffer --module blinker --emit c"), 0);
}

TEST(EclcCli, OptLevelFlags)
{
    // Every documented level compiles and emits; anything else is a
    // usage error.
    EXPECT_EQ(runEclc("--paper stack --emit stats -O0"), 0);
    EXPECT_EQ(runEclc("--paper stack --emit stats -O1"), 0);
    EXPECT_EQ(runEclc("--paper stack --emit stats -O2"), 0);
    EXPECT_EQ(runEclc("--paper stack --emit stats -O3"), 2);
    EXPECT_EQ(runEclc("--paper stack --emit stats -Ox"), 2);
    EXPECT_EQ(runEclc("--paper stack --opt-stats --emit stats"), 0);
    // Levels apply under --verify too.
    EXPECT_EQ(runEclc("--paper buffer --module blinker --verify -O0"), 0);
    EXPECT_EQ(
        runEclc("--paper buffer --module blinker --verify -O2 --opt-stats"),
        0);
}

TEST(EclcCli, OptStatsReportIsPrinted)
{
    const std::string cmd = eclcPath() +
                            " --paper stack --module toplevel --opt-stats "
                            "--emit stats 2> /dev/null";
    FILE* pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string out;
    char buf[256];
    while (fgets(buf, sizeof buf, pipe)) out += buf;
    EXPECT_EQ(pclose(pipe), 0);
    EXPECT_NE(out.find("optimization pipeline (-O2)"), std::string::npos)
        << out;
    EXPECT_NE(out.find("bytecode:"), std::string::npos) << out;
    EXPECT_NE(out.find("states:"), std::string::npos) << out;
}

TEST(EclcCli, VerifyCompleteExit0)
{
    EXPECT_EQ(runEclc("--paper buffer --module blinker --verify"), 0);
    EXPECT_EQ(runEclc("--paper buffer --verify --threads 2"), 0);
}

TEST(EclcCli, VerifyBoundReachedExit4)
{
    // assemble accumulates packet bytes: the state space outgrows any
    // small depth bound, so the run is inconclusive.
    EXPECT_EQ(runEclc("--paper stack --module assemble --verify --depth 3"),
              4);
    // Same for a tight state cap.
    EXPECT_EQ(
        runEclc("--paper stack --module toplevel --verify --max-states 5"),
        4);
}

TEST(EclcCli, VerifyViolationExit3)
{
    const std::string monitor =
        writeTemp("eclc_monitor.ecl", kSpeakerMonitor);
    EXPECT_EQ(runEclc("--paper buffer --verify --monitor " + monitor), 3);
    // Identically with 4 worker threads and with DFS.
    EXPECT_EQ(runEclc("--paper buffer --verify --threads 4 --monitor " +
                      monitor),
              3);
    EXPECT_EQ(runEclc("--paper buffer --verify --dfs --monitor " + monitor),
              3);
}

TEST(EclcCli, MonitorFileErrorsExit1)
{
    EXPECT_EQ(runEclc("--paper buffer --verify --monitor /nonexistent.ecl"),
              1);
    // Monitor that wires nothing: attach fails.
    const std::string unwirable = writeTemp(
        "eclc_unwirable_monitor.ecl",
        "module mon (input pure nosuch, output pure violation) {"
        " while (1) { await (nosuch); emit (violation); } }");
    EXPECT_EQ(runEclc("--paper buffer --verify --monitor " + unwirable), 1);
}

TEST(EclcCli, VerifyStoreFlags)
{
    // Every store kind explores the same (finite) module to completion;
    // only bitstate refuses to call that "verified".
    EXPECT_EQ(
        runEclc("--paper buffer --module blinker --verify --store exact"),
        0);
    EXPECT_EQ(runEclc("--paper buffer --module blinker --verify "
                      "--store=compressed"),
              0);
    // Unknown kinds and malformed budgets are usage errors.
    EXPECT_EQ(runEclc("--paper buffer --verify --store hashcompact"), 2);
    EXPECT_EQ(runEclc("--paper buffer --verify --store-mem 12Q"), 2);
    // Verify-only flags without --verify exit 2 (never silently ignored).
    EXPECT_EQ(runEclc("--paper buffer --store exact"), 2);
    EXPECT_EQ(runEclc("--paper buffer --store-mem 1M"), 2);
    EXPECT_EQ(runEclc("--paper buffer --por"), 2);
    EXPECT_EQ(runEclc("--paper buffer --native-succ"), 2);
}

TEST(EclcCli, VerifyBitstateNeverClaimsVerified)
{
    // A clean bitstate sweep exits 0 with the explicit bounded/lossy
    // disclaimer — and never exit 4: lossiness IS the bound.
    std::string out;
    EXPECT_EQ(runEclcCapture("--paper buffer --module blinker --verify "
                             "--store=bitstate",
                             out),
              0);
    EXPECT_NE(out.find("store bitstate:"), std::string::npos) << out;
    EXPECT_NE(out.find(", lossy"), std::string::npos) << out;
    EXPECT_NE(out.find("result: no violation found (bounded/lossy "
                       "bitstate search, not a proof)"),
              std::string::npos)
        << out;
}

TEST(EclcCli, VerifyBitstateViolationStillExit3)
{
    // Lossiness only ever loses states; a violation the sweep DOES reach
    // is real (replayed on SyncEngine) and must keep exit 3.
    const std::string monitor =
        writeTemp("eclc_bitstate_monitor.ecl", kSpeakerMonitor);
    std::string out;
    EXPECT_EQ(runEclcCapture(
                  "--paper buffer --verify --store=bitstate --monitor " +
                      monitor,
                  out),
              3);
    EXPECT_NE(out.find("VIOLATION"), std::string::npos) << out;
}

TEST(EclcCli, VerifyBoundReachedPrintsPartialStats)
{
    // Exit 4 must still report the partial exploration: the stats and
    // store lines print on every path.
    std::string out;
    EXPECT_EQ(runEclcCapture(
                  "--paper stack --module assemble --verify --depth 3", out),
              4);
    EXPECT_NE(out.find("verify assemble:"), std::string::npos) << out;
    EXPECT_NE(out.find("incomplete (bound reached)"), std::string::npos)
        << out;
    EXPECT_NE(out.find("store exact:"), std::string::npos) << out;
}

TEST(EclcCli, VerifyPorAndStoreMemReportLines)
{
    std::string out;
    EXPECT_EQ(runEclcCapture("--paper buffer --module blinker --verify "
                             "--por --store-mem 16M",
                             out),
              0);
    EXPECT_NE(out.find("por: "), std::string::npos) << out;
    EXPECT_NE(out.find("expansions skipped"), std::string::npos) << out;
}

// True when some host C compiler answers --version — the same probe
// order the native backend uses ($CC, then cc).
bool hostCompilerAvailable()
{
    const char* cc = std::getenv("CC");
    const std::string probe = (cc && *cc ? std::string(cc) : "cc");
    return std::system((probe + " --version > /dev/null 2> /dev/null")
                           .c_str()) == 0;
}

TEST(EclcCli, EmitCAliasExit0)
{
    EXPECT_EQ(runEclc("--paper buffer --module blinker --emit-c"), 0);
}

TEST(EclcCli, AotDifferentialExit0)
{
    if (!hostCompilerAvailable())
        GTEST_SKIP() << "no host C compiler for the AOT backend";
    // The documented acceptance run: dlopened native reaction function
    // bit-exact against the VM of the same compile.
    EXPECT_EQ(runEclc("--paper buffer --module blinker --aot"), 0);
    // Stimulus and opt-level flags are honored in AOT mode.
    EXPECT_EQ(runEclc("--paper stack --module assemble --aot "
                      "--stim-profile payload --stim-instants 50 "
                      "--stim-seed 7 -O0"),
              0);
}

TEST(EclcCli, AotUnavailableExit1)
{
    // ECL_NATIVE_DISABLE forces the unavailable path deterministically,
    // with or without a host compiler installed.
    const std::string cmd = "ECL_NATIVE_DISABLE=1 " + eclcPath() +
                            " --paper buffer --module blinker --aot "
                            "> /dev/null 2> /dev/null";
    const int status = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 1);
}

TEST(EclcCli, AotUsageConflictsExit2)
{
    EXPECT_EQ(runEclc("--paper stack --aot --verify"), 2);
    EXPECT_EQ(runEclc("--paper stack --aot --async"), 2);
    EXPECT_EQ(runEclc("--paper stack --aot --record-trace /tmp/t.trc"), 2);
    EXPECT_EQ(runEclc("--paper stack --aot --replay-trace /tmp/t.trc"), 2);
    // Stimulus flags still require a mode that drives a stimulus, and
    // --trace-text still requires --record-trace.
    EXPECT_EQ(runEclc("--paper stack --stim-seed 5"), 2);
    EXPECT_EQ(runEclc("--paper stack --aot --trace-text"), 2);
}

} // namespace
