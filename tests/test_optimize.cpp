// EFSM optimizer tests: size reduction + exact behavior preservation.
#include <gtest/gtest.h>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/efsm/optimize.h"

namespace {

using namespace ecl;

std::string trace(rt::ReactiveEngine& eng, unsigned seed, int instants,
                  const std::vector<std::string>& inputs,
                  const std::vector<std::string>& outputs)
{
    std::uint32_t rng = seed;
    std::string out;
    eng.react();
    for (int t = 0; t < instants; ++t) {
        for (const std::string& in : inputs) {
            rng = rng * 1664525u + 1013904223u;
            if ((rng >> 13) & 1) eng.setInput(in);
        }
        eng.react();
        for (const std::string& o : outputs)
            out += eng.outputPresent(o) ? '1' : '0';
        out += '.';
    }
    return out;
}

TEST(OptimizeTest, RemovesTestsOnPaperToplevel)
{
    Compiler compiler(paper::protocolStackSource());
    auto raw = compiler.compile("toplevel");
    std::size_t before = raw->machine().stats().testNodes;

    CompileOptions opts;
    opts.optimizeEfsm = true;
    auto opt = compiler.compile("toplevel", opts);
    std::size_t after = opt->machine().stats().testNodes;
    EXPECT_LT(after, before);
}

TEST(OptimizeTest, PreservesProtocolStackBehaviour)
{
    Compiler compiler(paper::protocolStackSource());
    auto raw = compiler.compile("toplevel");
    CompileOptions opts;
    opts.optimizeEfsm = true;
    auto opt = compiler.compile("toplevel", opts);

    auto e1 = raw->makeEngine();
    auto e2 = opt->makeEngine();
    e1->react();
    e2->react();
    std::uint32_t rng = 99;
    for (int t = 0; t < 300; ++t) {
        rng = rng * 1664525u + 1013904223u;
        std::uint8_t b = (t % 64 < 6) ? 0xA5 : ((rng >> 8) & 1 ? 0 : 3);
        e1->setInputScalar("in_byte", b);
        e2->setInputScalar("in_byte", b);
        if (t == 150) {
            e1->setInput("reset");
            e2->setInput("reset");
        }
        e1->react();
        e2->react();
        ASSERT_EQ(e1->outputPresent("addr_match"),
                  e2->outputPresent("addr_match"))
            << "instant " << t;
        ASSERT_EQ(e1->outputPresent("crc_ok"), e2->outputPresent("crc_ok"));
    }
}

TEST(OptimizeTest, PreservesBufferBehaviour)
{
    Compiler compiler(paper::audioBufferSource());
    auto raw = compiler.compile("buffer_top");
    CompileOptions opts;
    opts.optimizeEfsm = true;
    auto opt = compiler.compile("buffer_top", opts);
    for (unsigned seed = 1; seed <= 4; ++seed) {
        auto e1 = raw->makeEngine();
        auto e2 = opt->makeEngine();
        EXPECT_EQ(trace(*e1, seed, 80,
                        {"sample", "play", "stop", "tick", "reset"},
                        {"speaker_on", "speaker_off", "led_on", "led_off"}),
                  trace(*e2, seed, 80,
                        {"sample", "play", "stop", "tick", "reset"},
                        {"speaker_on", "speaker_off", "led_on", "led_off"}))
            << "seed " << seed;
    }
}

TEST(OptimizeTest, IdempotentSecondPass)
{
    Compiler compiler(paper::audioBufferSource());
    CompileOptions opts;
    opts.optimizeEfsm = true;
    auto mod = compiler.compile("buffer_top", opts);
    // A second optimize() over the already-optimized machine finds nothing.
    auto& machine = const_cast<efsm::Efsm&>(mod->machine());
    efsm::OptimizeStats stats = efsm::optimize(machine);
    EXPECT_EQ(stats.testsRemoved, 0u);
    EXPECT_EQ(stats.repeatedTestsResolved, 0u);
}

} // namespace
