// IR lowering tests: kernel desugarings, data/reactive split placement,
// trap depths, analysis sets, and the Esterel printer's phase-1 artifact.
#include <gtest/gtest.h>

#include "src/codegen/esterel_gen.h"
#include "src/frontend/parser.h"
#include "src/partition/lower.h"
#include "src/sema/elaborate.h"

namespace {

using namespace ecl;
using ir::Node;
using ir::NodeKind;

struct Lowered {
    Diagnostics diags;
    ast::Program program;
    ProgramSema progSema;
    std::unique_ptr<ast::ModuleDecl> flat;
    std::unique_ptr<ModuleSema> sema;
    ir::ReactiveProgram prog;
    LowerStats stats;

    explicit Lowered(const std::string& src, const char* name = "m")
    {
        program = parseEcl(src, diags);
        progSema = analyzeProgramDecls(program, diags);
        progSema.program = &program;
        flat = elaborate(program, progSema, name, diags);
        sema = std::make_unique<ModuleSema>(
            analyzeModule(*flat, progSema, diags));
        prog = lowerModule(*flat, *sema, diags, &stats);
    }
};

int countKind(const Node& n, NodeKind k)
{
    int c = n.kind == k ? 1 : 0;
    for (const ir::NodePtr& ch : n.children) c += countKind(*ch, k);
    return c;
}

const Node* findKind(const Node& n, NodeKind k)
{
    if (n.kind == k) return &n;
    for (const ir::NodePtr& ch : n.children)
        if (const Node* f = findKind(*ch, k)) return f;
    return nullptr;
}

TEST(LowerTest, AwaitDesugarsToTrapLoopPausePresent)
{
    Lowered l("module m (input pure a) { await (a); }");
    EXPECT_EQ(countKind(*l.prog.root, NodeKind::Trap), 1);
    EXPECT_EQ(countKind(*l.prog.root, NodeKind::Loop), 1);
    EXPECT_EQ(countKind(*l.prog.root, NodeKind::Pause), 1);
    EXPECT_EQ(countKind(*l.prog.root, NodeKind::Present), 1);
    EXPECT_EQ(countKind(*l.prog.root, NodeKind::Exit), 1);
    EXPECT_EQ(l.prog.pauseCount, 1);
    EXPECT_FALSE(l.prog.pauseDelta[0]);
}

TEST(LowerTest, EmptyAwaitIsDeltaPause)
{
    Lowered l("module m (input pure a) { await (); halt (); }");
    const Node* pause = findKind(*l.prog.root, NodeKind::Pause);
    ASSERT_NE(pause, nullptr);
    EXPECT_TRUE(pause->delta);
    EXPECT_TRUE(l.prog.pauseDelta[static_cast<std::size_t>(pause->pauseId)]);
}

TEST(LowerTest, HaltIsLoopPause)
{
    Lowered l("module m (input pure a) { halt (); }");
    ASSERT_EQ(l.prog.root->kind, NodeKind::Loop);
    EXPECT_EQ(l.prog.root->children[0]->kind, NodeKind::Pause);
}

TEST(LowerTest, DataLoopBecomesOneAction)
{
    Lowered l("module m (input int v, output int o) { int i; int s;"
              " while (1) { await (v);"
              "  for (i = 0, s = 0; i < 8; i++) { s += v; }"
              "  emit_v (o, s); } }");
    EXPECT_EQ(l.stats.extractedLoops, 1);
    int dataNodes = countKind(*l.prog.root, NodeKind::DataStmt);
    // decls (2) + extracted loop (1) = 3
    EXPECT_EQ(dataNodes, 3);
}

TEST(LowerTest, PureDataBlockCoalesced)
{
    Lowered l("module m (input int v) { int a; int b;"
              " while (1) { await (v); { a = v; b = a + 1; a = b * 2; } } }");
    // The inner block is one atomic action, not three.
    int dataNodes = countKind(*l.prog.root, NodeKind::DataStmt);
    EXPECT_EQ(dataNodes, 2 + 1); // two decls + one block
}

TEST(LowerTest, ReactiveIfKeepsBranches)
{
    Lowered l("module m (input int v, output pure o) {"
              " while (1) { await (v);"
              "  if (v > 0) { emit (o); } else { await (v); } } }");
    const Node* iff = findKind(*l.prog.root, NodeKind::If);
    ASSERT_NE(iff, nullptr);
    ASSERT_EQ(iff->children.size(), 2u);
    EXPECT_NE(iff->condExpr, nullptr);
}

TEST(LowerTest, BreakExitsOuterTrapContinueInner)
{
    Lowered l("module m (input pure t) {"
              " while (1) { await (t); break; } halt (); }");
    // break's Exit targets the while's break trap (depth 0 here);
    const Node* exitNode = nullptr;
    std::function<void(const Node&)> walk = [&](const Node& n) {
        if (n.kind == NodeKind::Exit) exitNode = &n;
        for (const ir::NodePtr& c : n.children) walk(*c);
    };
    walk(*l.prog.root);
    ASSERT_NE(exitNode, nullptr);
    EXPECT_EQ(l.prog.trapDepth[static_cast<std::size_t>(exitNode->trapId)], 0);
}

TEST(LowerTest, TrapDepthsNest)
{
    Lowered l("module m (input pure t) {"
              " while (1) { while (1) { await (t); break; } await (t); } }");
    // Two loops -> 4 traps; inner loop's traps deeper than outer's.
    ASSERT_GE(l.prog.trapCount, 4);
    int minDepth = 99;
    int maxDepth = -1;
    for (int d : l.prog.trapDepth) {
        minDepth = std::min(minDepth, d);
        maxDepth = std::max(maxDepth, d);
    }
    EXPECT_EQ(minDepth, 0);
    EXPECT_GE(maxDepth, 2);
}

TEST(LowerTest, AnalysisSetsFilled)
{
    Lowered l("module m (input pure a, output pure o, output int v) {"
              " int n;"
              " while (1) { await (a); emit (o); emit_v (v, n); } }");
    // Root sets: tests a; may emit o and v.
    std::vector<int> tested = l.prog.root->testedSigs;
    std::vector<int> emits = l.prog.root->mayEmit;
    EXPECT_EQ(tested.size(), 1u);
    EXPECT_EQ(emits.size(), 2u);
}

TEST(LowerTest, ValueReadsTracked)
{
    Lowered l("module m (input int v, output int o) { int n;"
              " while (1) { await (v); n = v + 1; emit_v (o, n); } }");
    // The data action reading `v` must be recorded for causality.
    const SignalInfo* v = l.sema->findSignal("v");
    bool found = false;
    for (int s : l.prog.root->valueReads)
        if (s == v->index) found = true;
    EXPECT_TRUE(found);
}

TEST(LowerTest, SignalDeclVanishes)
{
    Lowered l("module m (input pure a) { signal pure s; await (a); }");
    // The declaration leaves no node of its own: the only Nothing is the
    // await desugar's empty else branch, and the root is the await's trap
    // (a single-child Seq would have been collapsed).
    EXPECT_EQ(countKind(*l.prog.root, NodeKind::Nothing), 1);
    EXPECT_EQ(l.prog.root->kind, NodeKind::Trap);
}

TEST(LowerTest, IrPrinterShowsStructure)
{
    Lowered l("module m (input pure a, output pure o) {"
              " do { await (a); emit (o); } abort (a); }");
    std::string text = ir::printIr(*l.prog.root);
    EXPECT_NE(text.find("abort"), std::string::npos);
    EXPECT_NE(text.find("pause"), std::string::npos);
    EXPECT_NE(text.find("emit"), std::string::npos);
}

TEST(LowerTest, GuardEvalTruthTable)
{
    // evalGuard over an explicit assignment vector.
    Lowered l("module m (input pure a, input pure b) { await (a & ~b); }");
    const Node* present = findKind(*l.prog.root, NodeKind::Present);
    ASSERT_NE(present, nullptr);
    const ir::SigGuard& g = *present->guard;
    // signals: a=0, b=1
    EXPECT_TRUE(ir::evalGuard(g, {true, false}));
    EXPECT_FALSE(ir::evalGuard(g, {true, true}));
    EXPECT_FALSE(ir::evalGuard(g, {false, false}));
}

TEST(LowerTest, CloneGuardIndependent)
{
    Lowered l("module m (input pure a, input pure b) { await (a | b); }");
    const Node* present = findKind(*l.prog.root, NodeKind::Present);
    ir::SigGuardPtr copy = ir::cloneGuard(*present->guard);
    EXPECT_EQ(copy->kind, ir::SigGuard::Kind::Or);
    EXPECT_TRUE(ir::evalGuard(*copy, {false, true}));
}

TEST(EsterelPrintTest, KernelSpellings)
{
    Lowered l("module m (input pure a, input pure b, output pure o) {"
              " signal pure s;"
              " while (1) {"
              "  do {"
              "   par { { await (a & ~b); emit (s); } { await (s); } }"
              "   emit (o);"
              "  } suspend (b);"
              " } }");
    std::string strl =
        codegen::generateEsterel(l.prog, *l.sema, "m");
    EXPECT_NE(strl.find("module m:"), std::string::npos);
    EXPECT_NE(strl.find("(a and not b)"), std::string::npos);
    EXPECT_NE(strl.find("||"), std::string::npos);
    EXPECT_NE(strl.find("suspend"), std::string::npos);
    EXPECT_NE(strl.find("when b"), std::string::npos);
    EXPECT_NE(strl.find("signal s in"), std::string::npos);
    EXPECT_NE(strl.find("end module"), std::string::npos);
}

TEST(EsterelPrintTest, DataActionsAsHostCalls)
{
    Lowered l("module m (input int v, output int o) { int i; int s;"
              " while (1) { await (v);"
              "  for (i = 0, s = 0; i < 4; i++) { s += v; }"
              "  emit_v (o, s); } }");
    std::string strl = codegen::generateEsterel(l.prog, *l.sema, "m");
    EXPECT_NE(strl.find("call ecl_data_"), std::string::npos);
    EXPECT_NE(strl.find("procedure ecl_data_"), std::string::npos);
    std::string data =
        codegen::generateEsterelDataFile(l.prog, *l.sema, "m");
    EXPECT_NE(data.find("void ecl_data_"), std::string::npos);
    EXPECT_NE(data.find("for ("), std::string::npos);
}

} // namespace
