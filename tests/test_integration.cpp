// End-to-end tests of the paper's designs (Figures 1-4 and the audio
// buffer) through the complete pipeline: parse -> sema -> elaborate ->
// partition -> EFSM -> synchronous execution, with the Reactive-C-style
// baseline as a differential oracle.
#include <gtest/gtest.h>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "tests/ecl_test_util.h"

namespace {

using namespace ecl;

/// Feeds one packet byte-per-instant, then `drain` empty instants.
/// Returns the number of instants at which addr_match was present.
int runPacket(rt::ReactiveEngine& eng, const std::vector<std::uint8_t>& bytes,
              int drain = 10)
{
    int matches = 0;
    for (std::uint8_t b : bytes) {
        eng.setInputScalar("in_byte", b);
        eng.react();
        if (eng.outputPresent("addr_match")) ++matches;
    }
    for (int i = 0; i < drain; ++i) {
        eng.react();
        if (eng.outputPresent("addr_match")) ++matches;
    }
    return matches;
}

class ProtocolStackTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        compiler_ = std::make_unique<Compiler>(paper::protocolStackSource());
        mod_ = compiler_->compile("toplevel");
    }

    std::unique_ptr<Compiler> compiler_;
    std::shared_ptr<CompiledModule> mod_;
};

TEST_F(ProtocolStackTest, GoodPacketMatches)
{
    auto eng = mod_->makeEngine();
    eng->react(); // boot
    auto pkt = test::makePacket(paper::kAddrByte, 1);
    ASSERT_TRUE(test::paperCrcOk(pkt));
    EXPECT_EQ(runPacket(*eng, pkt), 1);
}

TEST_F(ProtocolStackTest, MatchArrivesSixInstantsAfterPacket)
{
    auto eng = mod_->makeEngine();
    eng->react();
    auto pkt = test::makePacket(paper::kAddrByte, 2);
    for (std::uint8_t b : pkt) {
        eng->setInputScalar("in_byte", b);
        eng->react();
    }
    // The lengthy header check runs one header byte per delta instant.
    for (int i = 1; i <= paper::kHdrSize - 1; ++i) {
        eng->react();
        EXPECT_FALSE(eng->outputPresent("addr_match")) << "instant +" << i;
    }
    eng->react();
    EXPECT_TRUE(eng->outputPresent("addr_match"));
}

TEST_F(ProtocolStackTest, BadCrcRejected)
{
    auto eng = mod_->makeEngine();
    eng->react();
    auto pkt = test::makePacket(paper::kAddrByte, 3, /*corruptTail=*/true);
    ASSERT_FALSE(test::paperCrcOk(pkt));
    EXPECT_EQ(runPacket(*eng, pkt), 0);
}

TEST_F(ProtocolStackTest, WrongAddressRejected)
{
    auto eng = mod_->makeEngine();
    eng->react();
    auto pkt = test::makePacket(0x11, 4); // CRC fine, address wrong
    ASSERT_TRUE(test::paperCrcOk(pkt));
    EXPECT_EQ(runPacket(*eng, pkt), 0);
}

TEST_F(ProtocolStackTest, BackToBackPackets)
{
    auto eng = mod_->makeEngine();
    eng->react();
    int matches = 0;
    for (int p = 0; p < 5; ++p) {
        auto pkt = test::makePacket(paper::kAddrByte, p);
        for (std::uint8_t b : pkt) {
            eng->setInputScalar("in_byte", b);
            eng->react();
            if (eng->outputPresent("addr_match")) ++matches;
        }
    }
    for (int i = 0; i < 10; ++i) {
        eng->react();
        if (eng->outputPresent("addr_match")) ++matches;
    }
    EXPECT_EQ(matches, 5);
}

TEST_F(ProtocolStackTest, ResetMidPacketRestartsAssembly)
{
    auto eng = mod_->makeEngine();
    eng->react();
    auto pkt = test::makePacket(paper::kAddrByte, 5);
    // Feed half a packet, then reset.
    for (int i = 0; i < 30; ++i) {
        eng->setInputScalar("in_byte", pkt[static_cast<std::size_t>(i)]);
        eng->react();
    }
    eng->setInput("reset");
    eng->react();
    EXPECT_FALSE(eng->outputPresent("addr_match"));
    // A full packet afterwards must still match exactly once.
    EXPECT_EQ(runPacket(*eng, pkt), 1);
}

TEST_F(ProtocolStackTest, ResetDuringHeaderCheckKillsMatch)
{
    auto eng = mod_->makeEngine();
    eng->react();
    auto pkt = test::makePacket(paper::kAddrByte, 6);
    for (std::uint8_t b : pkt) {
        eng->setInputScalar("in_byte", b);
        eng->react();
    }
    // Two delta instants into the header check, reset.
    eng->react();
    eng->react();
    eng->setInput("reset");
    eng->react();
    for (int i = 0; i < 10; ++i) {
        eng->react();
        EXPECT_FALSE(eng->outputPresent("addr_match"));
    }
}

TEST_F(ProtocolStackTest, BaselineEngineAgreesWithEfsm)
{
    auto efsm = mod_->makeEngine();
    auto base = mod_->makeBaselineEngine();
    efsm->react();
    base->react();

    std::vector<std::vector<std::uint8_t>> packets = {
        test::makePacket(paper::kAddrByte, 7),
        test::makePacket(paper::kAddrByte, 8, true),
        test::makePacket(0x22, 9),
        test::makePacket(paper::kAddrByte, 10),
    };
    int instant = 0;
    for (const auto& pkt : packets) {
        for (std::uint8_t b : pkt) {
            efsm->setInputScalar("in_byte", b);
            base->setInputScalar("in_byte", b);
            if (instant == 200) { // a reset somewhere in packet 4
                efsm->setInput("reset");
                base->setInput("reset");
            }
            efsm->react();
            base->react();
            ASSERT_EQ(efsm->outputPresent("addr_match"),
                      base->outputPresent("addr_match"))
                << "instant " << instant;
            ++instant;
        }
    }
    for (int i = 0; i < 10; ++i) {
        efsm->react();
        base->react();
        ASSERT_EQ(efsm->outputPresent("addr_match"),
                  base->outputPresent("addr_match"));
    }
}

TEST_F(ProtocolStackTest, InternalSignalsObservable)
{
    auto eng = mod_->makeEngine();
    eng->react();
    auto pkt = test::makePacket(paper::kAddrByte, 11);
    int packetEmissions = 0;
    int crcVerdicts = 0;
    for (std::uint8_t b : pkt) {
        eng->setInputScalar("in_byte", b);
        eng->react();
        if (eng->outputPresent("packet")) ++packetEmissions;
        if (eng->outputPresent("crc_ok")) ++crcVerdicts;
    }
    EXPECT_EQ(packetEmissions, 1);
    EXPECT_EQ(crcVerdicts, 0); // verdict appears one delta instant later
    eng->react();
    EXPECT_TRUE(eng->outputPresent("crc_ok"));
    EXPECT_EQ(eng->outputValue("crc_ok").toInt(), 1);
}

TEST(AudioBufferTest, CompilesAndProductStateSpaceIsLarge)
{
    Compiler compiler(paper::audioBufferSource());
    auto top = compiler.compile("buffer_top");
    auto producer = compiler.compile("producer");
    auto playback = compiler.compile("playback");
    auto blinker = compiler.compile("blinker");

    std::size_t topStates = top->machine().stats().states;
    std::size_t sumStates = producer->machine().stats().states +
                            playback->machine().stats().states +
                            blinker->machine().stats().states;
    EXPECT_GT(topStates, 2 * sumStates)
        << "collapsed automaton should show the product blowup "
        << "(top=" << topStates << ", sum=" << sumStates << ")";
}

TEST(AudioBufferTest, PlaybackProtocol)
{
    Compiler compiler(paper::audioBufferSource());
    auto mod = compiler.compile("buffer_top");
    auto eng = mod->makeEngine();
    eng->react(); // boot

    // 4 samples produce one frame.
    auto feedSamples = [&](int n) {
        for (int i = 0; i < n; ++i) {
            eng->setInput("sample");
            eng->react();
        }
    };

    eng->setInput("play");
    eng->react();
    EXPECT_FALSE(eng->outputPresent("speaker_on"));

    feedSamples(4); // frame 1
    EXPECT_FALSE(eng->outputPresent("speaker_on"));
    feedSamples(3);
    EXPECT_FALSE(eng->outputPresent("speaker_on"));
    feedSamples(1); // frame 2 completes prefill
    EXPECT_TRUE(eng->outputPresent("speaker_on"));

    eng->setInput("stop");
    eng->react();
    EXPECT_TRUE(eng->outputPresent("speaker_off"));
}

TEST(AudioBufferTest, BlinkerPattern)
{
    Compiler compiler(paper::audioBufferSource());
    auto mod = compiler.compile("blinker");
    auto eng = mod->makeEngine();
    eng->react();
    // Pattern over ticks: on@1, off@3, wraps every 5.
    std::vector<std::pair<bool, bool>> expected = {
        {true, false},  // tick 1: led_on
        {false, false}, // tick 2
        {false, true},  // tick 3: led_off
        {false, false}, // tick 4
        {false, false}, // tick 5
        {true, false},  // tick 6: wraps
    };
    for (std::size_t i = 0; i < expected.size(); ++i) {
        eng->setInput("tick");
        eng->react();
        EXPECT_EQ(eng->outputPresent("led_on"), expected[i].first)
            << "tick " << i + 1;
        EXPECT_EQ(eng->outputPresent("led_off"), expected[i].second)
            << "tick " << i + 1;
    }
}

} // namespace
