// Tests for the explicit-state verification layer (src/verify).
//
// The load-bearing suites:
//  * brute force — the explorer's reachable-state set and minimal
//    counterexample are cross-checked against exhaustive input-sequence
//    enumeration replayed on rt::SyncEngine (a fully independent
//    oracle: no shared successor code, state compared byte-for-byte via
//    encodeEngineState);
//  * determinism — 1-thread and 4-thread exploration must agree on
//    state count, interning order (digest), transition count and the
//    minimal counterexample, over all 8 paper modules;
//  * acceptance — a paper module + monitor pair yields a counterexample
//    that replays bit-exactly on SyncEngine;
//  * store kinds — exact / compressed / bitstate stores agree on state
//    counts, interning digests and thread-count determinism (bitstate
//    modulo its documented lossiness, which never fires on the pinned
//    paper inputs);
//  * partial-order reduction — reduced runs are differentially checked
//    against the unreduced explorer over the committed corpus and 200
//    generated programs: verdict agreement, state-set equality on
//    complete runs, and bit-exact counterexample replays.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/corpus/corpus.h"
#include "src/corpus/program_gen.h"
#include "src/verify/replay.h"
#include "src/verify/state_store.h"

#ifndef ECL_CORPUS_DIR
#define ECL_CORPUS_DIR "tests/corpus"
#endif

using namespace ecl;

namespace {

std::shared_ptr<CompiledModule> compileSrc(const std::string& src,
                                           const std::string& module = "")
{
    Compiler compiler(src);
    std::vector<std::string> names = compiler.moduleNames();
    return compiler.compile(module.empty() ? names.back() : module);
}

std::shared_ptr<CompiledModule> compilePaper(const char* source,
                                             const char* module)
{
    Compiler compiler(std::string(source) == std::string("stack")
                          ? paper::protocolStackSource()
                          : paper::audioBufferSource());
    return compiler.compile(module);
}

// Pure-control module with a finite state space (full exploration
// terminates) and three independent inputs.
const char* kPureSrc =
    "module m (input pure i0, input pure i1, input pure i2,"
    " output pure o0, output pure o1) {"
    " while (1) {"
    "  par {"
    "    { await (i0 & ~i1); emit (o0); }"
    "    { await (i1 | i2); emit (o1); }"
    "  }"
    " } }";

// Valued input + data state (acc grows per go instant, bounded only by
// the exploration depth).
const char* kAccSrc =
    "module m (input pure go, input int x, output int acc_out) {"
    " int acc;"
    " acc = 0;"
    " while (1) {"
    "  await (go);"
    "  acc = acc + x;"
    "  emit_v (acc_out, acc);"
    " } }";

// Same shape but with a reachable violation signal: acc >= 2 needs two
// go instants with x == 1.
const char* kOverflowSrc =
    "module m (input pure go, input int x,"
    " output pure violation_overflow) {"
    " int acc;"
    " acc = 0;"
    " while (1) {"
    "  await (go);"
    "  acc = acc + x;"
    "  if (acc >= 2) { emit (violation_overflow); }"
    " } }";

// ---------------------------------------------------------------------------
// Brute-force oracle: exhaustive input-sequence enumeration on SyncEngine
// ---------------------------------------------------------------------------

/// One letter of the FULL input alphabet: the (signal, value) pairs to
/// apply; empty Value = pure presence.
using BfLetter = std::vector<std::pair<int, Value>>;

/// Full alphabet over ALL inputs (no pruning): canonical mixed-radix
/// order, lowest signal index least significant, absent < domain values;
/// scalar domain {0, 1}, aggregates only the zero value — the explorer's
/// default domains.
std::vector<BfLetter> fullAlphabet(const ModuleSema& sema)
{
    struct In {
        int sig;
        std::vector<Value> dom; ///< Empty = pure.
    };
    std::vector<In> ins;
    for (const SignalInfo& s : sema.signals) {
        if (s.dir != SignalDir::Input) continue;
        In in{s.index, {}};
        if (!s.pure) {
            if (s.valueType->isScalar()) {
                in.dom.push_back(Value::fromInt(s.valueType, 0));
                in.dom.push_back(Value::fromInt(s.valueType, 1));
            } else {
                in.dom.emplace_back(s.valueType);
            }
        }
        ins.push_back(std::move(in));
    }
    std::vector<std::size_t> radix;
    std::size_t total = 1;
    for (const In& in : ins) {
        radix.push_back(in.dom.empty() ? 2 : 1 + in.dom.size());
        total *= radix.back();
    }
    std::vector<BfLetter> letters;
    letters.reserve(total);
    std::vector<std::size_t> digits(ins.size(), 0);
    for (std::size_t code = 0; code < total; ++code) {
        BfLetter letter;
        for (std::size_t k = 0; k < ins.size(); ++k) {
            if (digits[k] == 0) continue;
            letter.emplace_back(ins[k].sig,
                                ins[k].dom.empty()
                                    ? Value{}
                                    : ins[k].dom[digits[k] - 1]);
        }
        letters.push_back(std::move(letter));
        for (std::size_t k = 0; k < ins.size(); ++k) {
            if (++digits[k] < radix[k]) break;
            digits[k] = 0;
        }
    }
    return letters;
}

struct BruteResult {
    std::set<std::vector<std::uint8_t>> states; ///< Root included.
    bool violated = false;
    std::vector<int> minViolationSeq; ///< Letter codes, BFS-lex first.
};

/// BFS over input sequences (lengths ascending, letter codes ascending),
/// each replayed from scratch on a fresh SyncEngine. Terminated prefixes
/// are not extended (the explorer does not expand dead states either).
BruteResult bruteForce(const CompiledModule& mod,
                       const std::vector<BfLetter>& alphabet, int maxDepth,
                       const std::vector<std::string>& violationSignals)
{
    const rt::InstanceLayout layout =
        rt::computeInstanceLayout(mod.moduleSema());
    std::vector<int> violIdx;
    for (const std::string& name : violationSignals)
        violIdx.push_back(mod.moduleSema().findSignal(name)->index);

    BruteResult out;
    {
        auto fresh = mod.makeSyncEngine();
        out.states.insert(verify::encodeEngineState(*fresh, layout));
    }

    struct Replay {
        bool terminated = false;
        bool violated = false;
    };
    auto replaySeq = [&](const std::vector<int>& seq) {
        auto eng = mod.makeSyncEngine();
        Replay r;
        for (int li : seq) {
            for (const auto& [sig, v] : alphabet[static_cast<std::size_t>(
                     li)]) {
                if (v.empty())
                    eng->setInput(sig);
                else
                    eng->setInputValue(sig, v);
            }
            eng->react();
        }
        out.states.insert(verify::encodeEngineState(*eng, layout));
        for (int vi : violIdx)
            if (eng->outputPresent(vi)) r.violated = true;
        r.terminated = eng->terminated();
        return r;
    };

    std::vector<std::vector<int>> frontier{{}};
    for (int depth = 1; depth <= maxDepth; ++depth) {
        std::vector<std::vector<int>> next;
        for (const std::vector<int>& seq : frontier) {
            for (std::size_t li = 0; li < alphabet.size(); ++li) {
                std::vector<int> ext = seq;
                ext.push_back(static_cast<int>(li));
                Replay r = replaySeq(ext);
                if (r.violated && !out.violated) {
                    out.violated = true;
                    out.minViolationSeq = ext;
                }
                if (!r.terminated) next.push_back(std::move(ext));
            }
        }
        frontier = std::move(next);
    }
    return out;
}

std::set<std::vector<std::uint8_t>> explorerStates(const verify::Explorer& ex)
{
    const verify::StateStore& store = ex.stateStore();
    std::set<std::vector<std::uint8_t>> out;
    for (std::uint32_t id = 0; id < store.size(); ++id)
        out.emplace(store.at(id), store.at(id) + store.packedSize());
    return out;
}

/// Explorer trace -> (signal, value bytes) per instant for comparison
/// with a brute-force letter sequence.
std::vector<BfLetter> traceLetters(const std::vector<verify::TraceStep>& t)
{
    std::vector<BfLetter> out;
    for (const verify::TraceStep& step : t) {
        BfLetter letter;
        for (const verify::InputEvent& ev : step.inputs)
            letter.emplace_back(ev.signal, ev.value);
        out.push_back(std::move(letter));
    }
    return out;
}

void expectLettersEqual(const std::vector<BfLetter>& a,
                        const std::vector<BfLetter>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t) {
        ASSERT_EQ(a[t].size(), b[t].size()) << "instant " << t;
        for (std::size_t k = 0; k < a[t].size(); ++k) {
            EXPECT_EQ(a[t][k].first, b[t][k].first)
                << "instant " << t << " input " << k;
            const Value& va = a[t][k].second;
            const Value& vb = b[t][k].second;
            ASSERT_EQ(va.empty(), vb.empty());
            if (!va.empty()) {
                ASSERT_EQ(va.size(), vb.size());
                EXPECT_EQ(0,
                          std::memcmp(va.data(), vb.data(), va.size()))
                    << "instant " << t << " input " << k;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// StateStore unit tests
// ---------------------------------------------------------------------------

TEST(StateStore, InternDedupsAndNumbersSequentially)
{
    verify::ExactStore store(8);
    std::uint8_t rec[8] = {0};
    for (std::uint32_t i = 0; i < 10000; ++i) {
        std::memcpy(rec, &i, 4);
        auto [id, isNew] = store.intern(rec);
        EXPECT_TRUE(isNew);
        EXPECT_EQ(id, i);
    }
    EXPECT_EQ(store.size(), 10000u);
    const std::uint64_t digest = store.digest();
    // Re-interning is a no-op in any order.
    for (std::uint32_t i = 0; i < 10000; i += 37) {
        std::memcpy(rec, &i, 4);
        auto [id, isNew] = store.intern(rec);
        EXPECT_FALSE(isNew);
        EXPECT_EQ(id, i);
    }
    EXPECT_EQ(store.size(), 10000u);
    EXPECT_EQ(store.digest(), digest);
    // Records read back bit-exactly.
    std::uint32_t probe = 4242;
    std::memcpy(rec, &probe, 4);
    EXPECT_EQ(0, std::memcmp(store.at(4242), rec, 8));
}

TEST(StateStore, CompressedMatchesExactIdsAndDigest)
{
    // The compressed store is exact: same records in the same order must
    // produce the same ids, dedup decisions and the same order-sensitive
    // digest — it only changes the memory representation.
    verify::ExactStore exact(64);
    verify::CompressedStore comp(64, {4, 60});
    std::uint8_t rec[64] = {0};
    // Many records sharing a few distinct wide tail components (the
    // COLLAPSE case the component pools exist for: many control states
    // over few distinct data valuations).
    for (std::uint32_t i = 0; i < 4000; ++i) {
        std::uint32_t head = i;
        std::uint64_t tail = i % 7;
        std::memset(rec, 0, sizeof rec);
        std::memcpy(rec, &head, 4);
        std::memcpy(rec + 4, &tail, 8);
        auto [eid, enew] = exact.intern(rec);
        auto [cid, cnew] = comp.intern(rec);
        EXPECT_EQ(eid, cid);
        EXPECT_EQ(enew, cnew);
    }
    EXPECT_EQ(exact.size(), comp.size());
    EXPECT_EQ(exact.digest(), comp.digest());
    // Records reassemble bit-exactly from the component pools.
    for (std::uint32_t id = 0; id < comp.size(); id += 113) {
        std::uint8_t want[64];
        std::memcpy(want, exact.at(id), 64);
        EXPECT_EQ(0, std::memcmp(comp.at(id), want, 64)) << "id " << id;
    }
    // Re-intern dedups identically.
    std::uint32_t head = 17;
    std::uint64_t tail = 17 % 7;
    std::memset(rec, 0, sizeof rec);
    std::memcpy(rec, &head, 4);
    std::memcpy(rec + 4, &tail, 8);
    EXPECT_EQ(comp.intern(rec), (std::pair<std::uint32_t, bool>{17u, false}));
    // 4000 x 64B records with 7 distinct 60B tails: tuples + pools must
    // undercut the flat arena.
    EXPECT_LT(comp.memoryBytes(), exact.memoryBytes());
}

TEST(StateStore, BitstateIsLossyMembershipOnly)
{
    verify::BitstateStore store(8, 1 << 16);
    EXPECT_TRUE(store.lossy());
    EXPECT_FALSE(store.canRead());
    EXPECT_EQ(store.memoryBytes(), 1u << 16);
    std::uint8_t rec[8] = {0};
    std::uint32_t fresh = 0;
    for (std::uint32_t i = 0; i < 1000; ++i) {
        std::memcpy(rec, &i, 4);
        auto [id, isNew] = store.intern(rec);
        if (isNew) {
            EXPECT_EQ(id, fresh);
            ++fresh;
        } else {
            // A (rare at this fill) collision merges silently.
            EXPECT_EQ(id, verify::StateStore::kNoId);
        }
    }
    EXPECT_EQ(store.size(), fresh);
    EXPECT_GT(store.fillRatio(), 0.0);
    // Exact re-probes of seen records always report seen.
    for (std::uint32_t i = 0; i < 1000; i += 41) {
        std::memcpy(rec, &i, 4);
        auto [id, isNew] = store.intern(rec);
        EXPECT_FALSE(isNew);
        EXPECT_EQ(id, verify::StateStore::kNoId);
    }
    // Records are not retained: at() must refuse rather than fabricate.
    EXPECT_THROW((void)store.at(0), EclError);
}

TEST(StateStore, FactoryBuildsEveryKindAndParsesNames)
{
    for (verify::StoreKind kind :
         {verify::StoreKind::Exact, verify::StoreKind::Compressed,
          verify::StoreKind::Bitstate}) {
        auto store = verify::StateStore::make(kind, 16);
        ASSERT_TRUE(store);
        EXPECT_EQ(store->kind(), kind);
        EXPECT_EQ(store->packedSize(), 16u);
        verify::StoreKind parsed;
        ASSERT_TRUE(
            verify::parseStoreKind(verify::storeKindName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    verify::StoreKind parsed;
    EXPECT_FALSE(verify::parseStoreKind("hashcompact", parsed));
}

TEST(StateStore, GenerationCountsMutatingInternsOnly)
{
    verify::ExactStore store(4);
    const std::uint64_t g0 = store.generation();
    std::uint32_t v = 1;
    store.intern(reinterpret_cast<const std::uint8_t*>(&v));
    EXPECT_EQ(store.generation(), g0 + 1);
    store.intern(reinterpret_cast<const std::uint8_t*>(&v)); // dup: no bump
    EXPECT_EQ(store.generation(), g0 + 1);
    v = 2;
    store.intern(reinterpret_cast<const std::uint8_t*>(&v));
    EXPECT_EQ(store.generation(), g0 + 2);
    (void)store.at(0); // reads never bump
    EXPECT_EQ(store.generation(), g0 + 2);
}

// ---------------------------------------------------------------------------
// Brute-force cross-checks (<= 4 inputs, depth <= 6)
// ---------------------------------------------------------------------------

TEST(VerifyBruteForce, PureControlReachableSetMatches)
{
    auto mod = compileSrc(kPureSrc);
    const std::vector<BfLetter> alphabet =
        fullAlphabet(mod->moduleSema()); // 2^3 letters
    ASSERT_EQ(alphabet.size(), 8u);
    BruteResult brute = bruteForce(*mod, alphabet, 4, {});

    for (bool prune : {true, false}) {
        verify::ExplorerOptions opts;
        opts.maxDepth = 4;
        opts.pruneInputs = prune;
        auto ex = mod->makeExplorer(opts);
        verify::ExploreResult res = ex->run();
        EXPECT_FALSE(res.violated);
        EXPECT_EQ(explorerStates(*ex), brute.states) << "prune=" << prune;
    }
}

TEST(VerifyBruteForce, ValuedInputReachableSetMatches)
{
    auto mod = compileSrc(kAccSrc);
    const std::vector<BfLetter> alphabet =
        fullAlphabet(mod->moduleSema()); // 2 * 3 letters
    ASSERT_EQ(alphabet.size(), 6u);
    BruteResult brute = bruteForce(*mod, alphabet, 5, {});

    verify::ExplorerOptions opts;
    opts.maxDepth = 5;
    auto ex = mod->makeExplorer(opts);
    verify::ExploreResult res = ex->run();
    EXPECT_FALSE(res.violated);
    EXPECT_EQ(explorerStates(*ex), brute.states);
}

TEST(VerifyBruteForce, MinimalViolationTraceMatches)
{
    auto mod = compileSrc(kOverflowSrc);
    const std::vector<BfLetter> alphabet = fullAlphabet(mod->moduleSema());
    BruteResult brute =
        bruteForce(*mod, alphabet, 6, {"violation_overflow"});
    ASSERT_TRUE(brute.violated);

    verify::ExplorerOptions opts;
    opts.maxDepth = 6;
    auto ex = mod->makeExplorer(opts);
    verify::ExploreResult res = ex->run();
    ASSERT_TRUE(res.violated);
    EXPECT_EQ(res.violation.kind, verify::Violation::Kind::DesignSignal);
    EXPECT_EQ(res.violation.what, "violation_overflow");
    EXPECT_EQ(res.trace.size(), brute.minViolationSeq.size());

    // Same minimal counterexample, input for input.
    std::vector<BfLetter> bruteLetters;
    for (int li : brute.minViolationSeq)
        bruteLetters.push_back(alphabet[static_cast<std::size_t>(li)]);
    expectLettersEqual(traceLetters(res.trace), bruteLetters);

    // And it replays on the production engine.
    auto engine = mod->makeSyncEngine();
    verify::ReplayOutcome rp =
        verify::replayCounterexample(*engine, nullptr, res);
    EXPECT_TRUE(rp.reproduced) << rp.detail;
}

TEST(VerifyBruteForce, RandomWalkStatesAreReachable)
{
    // Every state a concretely-driven SyncEngine can reach (inputs drawn
    // from the explorer's domains) must be in the explored set.
    auto mod = compileSrc(kPureSrc);
    auto ex = mod->makeExplorer({});
    verify::ExploreResult res = ex->run();
    ASSERT_TRUE(res.stats.complete);
    const std::set<std::vector<std::uint8_t>> states = explorerStates(*ex);
    const std::vector<BfLetter> alphabet = fullAlphabet(mod->moduleSema());
    const rt::InstanceLayout layout =
        rt::computeInstanceLayout(mod->moduleSema());

    std::mt19937 rng(20260728u);
    for (int walk = 0; walk < 10; ++walk) {
        auto eng = mod->makeSyncEngine();
        EXPECT_TRUE(states.count(verify::encodeEngineState(*eng, layout)));
        for (int t = 0; t < 30; ++t) {
            const BfLetter& letter = alphabet[rng() % alphabet.size()];
            for (const auto& [sig, v] : letter) {
                if (v.empty())
                    eng->setInput(sig);
                else
                    eng->setInputValue(sig, v);
            }
            eng->react();
            EXPECT_TRUE(
                states.count(verify::encodeEngineState(*eng, layout)))
                << "walk " << walk << " instant " << t;
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy / option equivalences
// ---------------------------------------------------------------------------

TEST(VerifyStrategies, DfsFindsTheSameStateSet)
{
    auto mod = compileSrc(kPureSrc);
    auto bfs = mod->makeExplorer({});
    verify::ExploreResult rb = bfs->run();
    verify::ExplorerOptions opts;
    opts.strategy = verify::Strategy::Dfs;
    auto dfs = mod->makeExplorer(opts);
    verify::ExploreResult rd = dfs->run();
    EXPECT_TRUE(rb.stats.complete);
    EXPECT_TRUE(rd.stats.complete);
    EXPECT_EQ(rb.stats.states, rd.stats.states);
    EXPECT_EQ(explorerStates(*bfs), explorerStates(*dfs));
}

TEST(VerifyStrategies, PruningPreservesInterningOrder)
{
    // Pruned enumeration = unpruned enumeration with irrelevant digits
    // held at zero, and duplicates dedup to first occurrence — so even
    // the order-sensitive digest must match.
    for (const char* src : {kPureSrc, kAccSrc}) {
        auto mod = compileSrc(src);
        verify::ExplorerOptions opts;
        opts.maxDepth = 5;
        auto pruned = mod->makeExplorer(opts);
        verify::ExploreResult rp = pruned->run();
        opts.pruneInputs = false;
        auto full = mod->makeExplorer(opts);
        verify::ExploreResult rf = full->run();
        EXPECT_EQ(rp.stats.states, rf.stats.states);
        EXPECT_EQ(pruned->stateDigest(), full->stateDigest());
        // Pruning must only ever shrink the work.
        EXPECT_LE(rp.stats.transitions, rf.stats.transitions);
    }
}

TEST(VerifyOptions, DepthAndStateBoundsReportIncomplete)
{
    auto mod = compileSrc(kAccSrc);
    verify::ExplorerOptions opts;
    opts.maxDepth = 3;
    auto ex = mod->makeExplorer(opts);
    verify::ExploreResult res = ex->run();
    EXPECT_FALSE(res.stats.complete);
    EXPECT_EQ(res.stats.depthReached, 3);

    verify::ExplorerOptions capped;
    capped.maxStates = 4;
    auto ex2 = mod->makeExplorer(capped);
    verify::ExploreResult res2 = ex2->run();
    EXPECT_FALSE(res2.stats.complete);
    EXPECT_GE(res2.stats.states, 4u);
}

TEST(VerifyOptions, RunIsSingleShot)
{
    auto mod = compileSrc(kPureSrc);
    auto ex = mod->makeExplorer({});
    (void)ex->run();
    EXPECT_THROW(ex->run(), EclError);
}

TEST(VerifyOptions, ScalarDomainOverridePerSignal)
{
    auto mod = compileSrc(kAccSrc);
    verify::ExplorerOptions opts;
    opts.maxDepth = 3;
    opts.scalarDomains["x"] = {5};
    auto ex = mod->makeExplorer(opts);
    verify::ExploreResult res = ex->run();
    // acc after one go instant with x=5 must be 5: find a state whose
    // acc variable reads 5.
    const verify::StateStore& store = ex->stateStore();
    const rt::InstanceLayout& layout = ex->designLayout();
    bool sawFive = false;
    for (std::uint32_t id = 0; id < store.size(); ++id) {
        verify::StateView view(mod->moduleSema(), layout, 0,
                               store.at(id) + 4);
        if (view.var("acc") == 5) sawFive = true;
    }
    EXPECT_TRUE(sawFive);
    EXPECT_FALSE(res.violated);
}

TEST(VerifyPredicates, PredicateViolationWithReplay)
{
    auto mod = compileSrc(kAccSrc);
    verify::ExplorerOptions opts;
    opts.maxDepth = 8;
    auto ex = mod->makeExplorer(opts);
    ex->addPredicate("acc_le_2", [](const verify::StateView& s) {
        return s.var("acc") > 2;
    });
    verify::ExploreResult res = ex->run();
    ASSERT_TRUE(res.violated);
    EXPECT_EQ(res.violation.kind, verify::Violation::Kind::Predicate);
    EXPECT_EQ(res.violation.what, "acc_le_2");
    // Minimal: acc > 2 needs three go/x=1 instants after boot.
    EXPECT_EQ(res.trace.size(), 4u);
    auto engine = mod->makeSyncEngine();
    verify::ReplayOutcome rp =
        verify::replayCounterexample(*engine, nullptr, res);
    EXPECT_TRUE(rp.reproduced) << rp.detail;
}

// ---------------------------------------------------------------------------
// Monitors
// ---------------------------------------------------------------------------

const char* kSpeakerMonitorSrc =
    "module mon (input pure speaker_on, output pure violation) {"
    " while (1) { await (speaker_on); emit (violation); } }";

TEST(VerifyMonitor, PaperModuleViolationReplaysBitExactly)
{
    // Acceptance: buffer_top + "speaker never turns on" monitor. The
    // speaker IS reachable, so exploration must produce a counterexample
    // that replays bit-exactly on SyncEngine — and identically for 1 and
    // 4 worker threads.
    auto design = compilePaper("buffer", "buffer_top");
    auto monitor = compileSrc(kSpeakerMonitorSrc);

    verify::ExploreResult first;
    std::uint64_t firstDigest = 0;
    for (int threads : {1, 4}) {
        verify::ExplorerOptions opts;
        opts.threads = threads;
        auto ex = design->makeExplorer(opts);
        monitor->attachAsMonitor(*ex);
        verify::ExploreResult res = ex->run();
        ASSERT_TRUE(res.violated) << "threads=" << threads;
        EXPECT_EQ(res.violation.kind,
                  verify::Violation::Kind::MonitorSignal);
        EXPECT_EQ(res.violation.what, "violation");

        auto dEng = design->makeSyncEngine();
        auto mEng = monitor->makeSyncEngine();
        verify::ReplayOutcome rp =
            verify::replayCounterexample(*dEng, mEng.get(), res);
        EXPECT_TRUE(rp.reproduced) << rp.detail;

        if (threads == 1) {
            first = res;
            firstDigest = ex->stateDigest();
        } else {
            // Thread-count determinism on the violating run.
            EXPECT_EQ(res.stats.states, first.stats.states);
            EXPECT_EQ(res.stats.transitions, first.stats.transitions);
            EXPECT_EQ(res.violation.depth, first.violation.depth);
            EXPECT_EQ(firstDigest, ex->stateDigest());
            expectLettersEqual(traceLetters(res.trace),
                               traceLetters(first.trace));
        }
    }
}

TEST(VerifyMonitor, ValuedViolationValueIsBitExact)
{
    auto design = compileSrc(
        "module d (input pure tick, output int level) {"
        " int n;"
        " n = 0;"
        " while (1) { await (tick); n = n + 1; emit_v (level, n); } }");
    auto monitor = compileSrc(
        "module m (input int level, output int violation_level) {"
        " while (1) {"
        "  await (level);"
        "  if (level >= 2) { emit_v (violation_level, level * 10); }"
        " } }");

    auto ex = design->makeExplorer({});
    monitor->attachAsMonitor(*ex);
    verify::ExploreResult res = ex->run();
    ASSERT_TRUE(res.violated);
    EXPECT_EQ(res.violation.kind, verify::Violation::Kind::MonitorSignal);
    EXPECT_EQ(res.violation.what, "violation_level");
    ASSERT_FALSE(res.violation.value.empty());
    EXPECT_EQ(res.violation.value.toInt(), 20);

    auto dEng = design->makeSyncEngine();
    auto mEng = monitor->makeSyncEngine();
    verify::ReplayOutcome rp =
        verify::replayCounterexample(*dEng, mEng.get(), res);
    EXPECT_TRUE(rp.reproduced) << rp.detail;
}

TEST(VerifyMonitor, WiredUntestedPureInputIsNotPruned)
{
    // The design never tests `b`, so dirty-set pruning would hold it
    // absent — but the monitor awaits it. Wired design inputs must stay
    // in the alphabet or this (trivially reachable) violation is missed
    // and the run is falsely reported complete.
    auto design = compileSrc(
        "module d (input pure a, input pure b, output pure o) {"
        " while (1) { await (a); emit (o); } }");
    auto monitor = compileSrc(
        "module m (input pure b, output pure violation) {"
        " while (1) { await (b); emit (violation); } }");
    auto ex = design->makeExplorer({});
    monitor->attachAsMonitor(*ex);
    verify::ExploreResult res = ex->run();
    ASSERT_TRUE(res.violated);
    EXPECT_EQ(res.violation.kind, verify::Violation::Kind::MonitorSignal);
    EXPECT_EQ(res.trace.size(), 2u); // arm the await at boot, then b

    auto dEng = design->makeSyncEngine();
    auto mEng = monitor->makeSyncEngine();
    verify::ReplayOutcome rp =
        verify::replayCounterexample(*dEng, mEng.get(), res);
    EXPECT_TRUE(rp.reproduced) << rp.detail;
}

TEST(VerifyMonitor, MonitorRuntimeErrorViolationReplays)
{
    // A monitor whose reaction traps (array index out of bounds once the
    // design's level reaches 2) is itself a verification result; the
    // replay must reproduce the trap, not leak the exception.
    auto design = compileSrc(
        "module d (input pure tick, output int level) {"
        " int n;"
        " n = 0;"
        " while (1) { await (tick); n = n + 1; emit_v (level, n); } }");
    auto monitor = compileSrc(
        "module m (input int level, output pure violation) {"
        " int buf[2];"
        " while (1) { await (level); buf[level] = 1; } }");
    auto ex = design->makeExplorer({});
    monitor->attachAsMonitor(*ex);
    verify::ExploreResult res = ex->run();
    ASSERT_TRUE(res.violated);
    EXPECT_EQ(res.violation.kind, verify::Violation::Kind::RuntimeError);

    auto dEng = design->makeSyncEngine();
    auto mEng = monitor->makeSyncEngine();
    verify::ReplayOutcome rp =
        verify::replayCounterexample(*dEng, mEng.get(), res);
    EXPECT_TRUE(rp.reproduced) << rp.detail;
}

TEST(VerifyMonitor, WiringErrors)
{
    auto design = compileSrc(kPureSrc);
    auto unmatched = compileSrc(
        "module m (input pure nonexistent, output pure violation) {"
        " while (1) { await (nonexistent); emit (violation); } }");
    auto ex = design->makeExplorer({});
    EXPECT_THROW(unmatched->attachAsMonitor(*ex), EclError);

    // A monitor that can never flag anything is rejected at run().
    auto silent = compileSrc(
        "module m (input pure i0, output pure saw_it) {"
        " while (1) { await (i0); emit (saw_it); } }");
    auto ex2 = design->makeExplorer({});
    silent->attachAsMonitor(*ex2);
    EXPECT_THROW(ex2->run(), EclError);

    // ...unless the signal is named explicitly.
    verify::ExplorerOptions opts;
    opts.violationSignals = {"saw_it"};
    auto ex3 = design->makeExplorer(opts);
    silent->attachAsMonitor(*ex3);
    verify::ExploreResult res = ex3->run();
    EXPECT_TRUE(res.violated);
    EXPECT_EQ(res.violation.what, "saw_it");
}

// ---------------------------------------------------------------------------
// 1-thread vs 4-thread determinism over all 8 paper modules
// ---------------------------------------------------------------------------

struct PaperCase {
    const char* source;
    const char* module;
    int depth;
};

void PrintTo(const PaperCase& c, std::ostream* os)
{
    *os << c.source << "/" << c.module;
}

class VerifyDeterminismTest : public ::testing::TestWithParam<PaperCase> {};

TEST_P(VerifyDeterminismTest, OneAndFourThreadsAgree)
{
    const PaperCase& pc = GetParam();
    auto mod = compilePaper(pc.source, pc.module);

    verify::ExploreStats first;
    std::uint64_t firstDigest = 0;
    for (int threads : {1, 4}) {
        verify::ExplorerOptions opts;
        opts.threads = threads;
        opts.maxDepth = pc.depth;
        opts.maxStates = 200000;
        auto ex = mod->makeExplorer(opts);
        verify::ExploreResult res = ex->run();
        EXPECT_FALSE(res.violated);
        if (threads == 1) {
            first = res.stats;
            firstDigest = ex->stateDigest();
        } else {
            EXPECT_EQ(res.stats.states, first.states);
            EXPECT_EQ(res.stats.transitions, first.transitions);
            EXPECT_EQ(res.stats.peakFrontier, first.peakFrontier);
            EXPECT_EQ(res.stats.depthReached, first.depthReached);
            EXPECT_EQ(res.stats.complete, first.complete);
            EXPECT_EQ(ex->stateDigest(), firstDigest);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperModules, VerifyDeterminismTest,
    ::testing::Values(PaperCase{"stack", "assemble", 8},
                      PaperCase{"stack", "checkcrc", 8},
                      PaperCase{"stack", "prochdr", 8},
                      PaperCase{"stack", "toplevel", 8},
                      PaperCase{"buffer", "producer", 8},
                      PaperCase{"buffer", "playback", 8},
                      PaperCase{"buffer", "blinker", 8},
                      PaperCase{"buffer", "buffer_top", 20}));

// ---------------------------------------------------------------------------
// Explorer states vs batch-engine arena compatibility
// ---------------------------------------------------------------------------

TEST(VerifyLayout, PackedStatesAreArenaCompatible)
{
    // The explorer's per-module data bytes use rt::InstanceLayout — the
    // exact layout a BatchEngine instance slice uses. Drive one batch
    // instance and one explorer-domain walk to the same instant stream
    // and compare the encoded SyncEngine state against the explored set
    // (already covered) AND the batch arena stride contract.
    auto mod = compileSrc(kAccSrc);
    const rt::InstanceLayout layout =
        rt::computeInstanceLayout(mod->moduleSema());
    auto batch = mod->makeBatchEngine(1);
    EXPECT_EQ(batch->bytesPerInstance(), layout.stride);
    EXPECT_LE(layout.dataBytes, layout.stride);
    // packedSize = 4-byte control header + dataBytes (no monitor).
    verify::ExplorerOptions opts;
    opts.maxDepth = 2;
    auto ex2 = mod->makeExplorer(opts);
    (void)ex2->run();
    EXPECT_EQ(ex2->packedSize(), 4 + layout.dataBytes);
}

// ---------------------------------------------------------------------------
// Optimization-level regression: the minimized machine (-O2) must explore
// no more states than the verbatim tables (-O0) with identical verdicts,
// and counterexamples found on the minimized machine must replay on
// engines at EITHER level (the unoptimized SyncEngine included).
// ---------------------------------------------------------------------------

std::shared_ptr<CompiledModule> compilePaperAt(const char* source,
                                               const char* module,
                                               int optLevel)
{
    Compiler compiler(std::string(source) == std::string("stack")
                          ? paper::protocolStackSource()
                          : paper::audioBufferSource());
    CompileOptions copts;
    copts.optLevel = optLevel;
    return compiler.compile(module, copts);
}

std::shared_ptr<CompiledModule> compileSrcAt(const std::string& src,
                                             int optLevel)
{
    Compiler compiler(src);
    CompileOptions copts;
    copts.optLevel = optLevel;
    return compiler.compile(compiler.moduleNames().back(), copts);
}

class VerifyOptLevelTest : public ::testing::TestWithParam<PaperCase> {};

TEST_P(VerifyOptLevelTest, MinimizedMachineExploresNoMoreStates)
{
    const PaperCase& pc = GetParam();
    auto o0 = compilePaperAt(pc.source, pc.module, 0);
    auto o2 = compilePaperAt(pc.source, pc.module, 2);

    verify::ExplorerOptions opts;
    opts.maxDepth = pc.depth;
    opts.maxStates = 200000;
    auto ex0 = o0->makeExplorer(opts);
    auto ex2 = o2->makeExplorer(opts);
    verify::ExploreResult r0 = ex0->run();
    verify::ExploreResult r2 = ex2->run();

    EXPECT_LE(r2.stats.controlStates, r0.stats.controlStates);
    EXPECT_LE(r2.stats.states, r0.stats.states);
    EXPECT_EQ(r2.violated, r0.violated);
    EXPECT_EQ(r2.stats.complete, r0.stats.complete);
    EXPECT_EQ(r2.stats.depthReached, r0.stats.depthReached);
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperModules, VerifyOptLevelTest,
    ::testing::Values(PaperCase{"stack", "assemble", 6},
                      PaperCase{"stack", "checkcrc", 6},
                      PaperCase{"stack", "prochdr", 6},
                      PaperCase{"stack", "toplevel", 6},
                      PaperCase{"buffer", "producer", 8},
                      PaperCase{"buffer", "playback", 8},
                      PaperCase{"buffer", "blinker", 8},
                      PaperCase{"buffer", "buffer_top", 16}));

TEST(VerifyOptLevel, DesignViolationVerdictAndReplayAcrossLevels)
{
    auto o0 = compileSrcAt(kOverflowSrc, 0);
    auto o2 = compileSrcAt(kOverflowSrc, 2);
    auto ex0 = o0->makeExplorer({});
    auto ex2 = o2->makeExplorer({});
    verify::ExploreResult r0 = ex0->run();
    verify::ExploreResult r2 = ex2->run();

    ASSERT_TRUE(r0.violated);
    ASSERT_TRUE(r2.violated);
    EXPECT_EQ(r2.violation.kind, r0.violation.kind);
    EXPECT_EQ(r2.violation.what, r0.violation.what);
    // BFS minimal depth is a property of the behavior, which
    // minimization preserves exactly.
    EXPECT_EQ(r2.violation.depth, r0.violation.depth);
    EXPECT_LE(r2.stats.states, r0.stats.states);

    // Bit-exact replay on the engine of the level that found it.
    auto e2 = o2->makeSyncEngine();
    verify::ReplayOutcome rp =
        verify::replayCounterexample(*e2, nullptr, r2);
    EXPECT_TRUE(rp.reproduced) << rp.detail;

    // The -O2 counterexample must also reproduce the violating emission
    // on the UNOPTIMIZED engine (state ids differ after minimization, so
    // the packed-state comparison does not apply — the emission does).
    auto cross = [](CompiledModule& mod, const verify::ExploreResult& res) {
        auto eng = mod.makeSyncEngine();
        for (const verify::TraceStep& step : res.trace) {
            for (const verify::InputEvent& ev : step.inputs) {
                if (ev.value.empty())
                    eng->setInput(ev.signal);
                else
                    eng->setInputValue(ev.signal, ev.value);
            }
            eng->react();
        }
        return eng->outputPresent(res.violation.signal);
    };
    EXPECT_TRUE(cross(*o0, r2)) << "O2 trace must violate on the O0 engine";
    EXPECT_TRUE(cross(*o2, r0)) << "O0 trace must violate on the O2 engine";
}

TEST(VerifyOptLevel, MonitorViolationReplaysOnUnoptimizedEngines)
{
    auto design2 = compilePaperAt("buffer", "buffer_top", 2);
    auto monitor2 = compileSrcAt(kSpeakerMonitorSrc, 2);
    auto ex = design2->makeExplorer({});
    monitor2->attachAsMonitor(*ex);
    verify::ExploreResult res = ex->run();
    ASSERT_TRUE(res.violated);

    // Feed the trace found on the minimized machine to -O0 engines of
    // both modules, wiring the monitor by name exactly as the explorer
    // does; the monitor must emit its violation in the final instant.
    auto design0 = compilePaperAt("buffer", "buffer_top", 0);
    auto monitor0 = compileSrcAt(kSpeakerMonitorSrc, 0);
    auto dEng = design0->makeSyncEngine();
    auto mEng = monitor0->makeSyncEngine();
    const std::vector<verify::MonitorWire> wires =
        verify::wireMonitor(dEng->moduleSema(), mEng->moduleSema());
    for (const verify::TraceStep& step : res.trace) {
        for (const verify::InputEvent& ev : step.inputs) {
            if (ev.value.empty())
                dEng->setInput(ev.signal);
            else
                dEng->setInputValue(ev.signal, ev.value);
        }
        dEng->react();
        for (const verify::MonitorWire& w : wires) {
            if (!dEng->outputPresent(w.designSig)) continue;
            if (w.valued)
                mEng->setInputScalar(
                    w.monitorSig, dEng->outputValue(w.designSig).toInt());
            else
                mEng->setInput(w.monitorSig);
        }
        mEng->react();
    }
    EXPECT_TRUE(mEng->outputPresent(res.violation.signal));
}

// ---------------------------------------------------------------------------
// Store-kind determinism: every store kind must reproduce the exact
// store's canonical state counts and interning digest, at any thread
// count, over all 8 paper modules. (Bitstate equality is a property of
// the pinned inputs — no collision occurs at the default table size —
// and is deterministic, so pinning it here means a digest change is a
// real behavior change, not noise.)
// ---------------------------------------------------------------------------

class VerifyStoreDeterminismTest
    : public ::testing::TestWithParam<
          std::tuple<PaperCase, verify::StoreKind>> {};

TEST_P(VerifyStoreDeterminismTest, KindAndThreadCountAgree)
{
    const PaperCase& pc = std::get<0>(GetParam());
    const verify::StoreKind kind = std::get<1>(GetParam());
    auto mod = compilePaper(pc.source, pc.module);

    // Canonical reference: the exact store at 1 thread.
    std::uint64_t refStates = 0, refTransitions = 0, refDigest = 0;
    if (kind != verify::StoreKind::Exact) {
        verify::ExplorerOptions ref;
        ref.maxDepth = pc.depth;
        ref.maxStates = 200000;
        auto exRef = mod->makeExplorer(ref);
        verify::ExploreResult r = exRef->run();
        refStates = r.stats.states;
        refTransitions = r.stats.transitions;
        refDigest = exRef->stateDigest();
    }

    verify::ExploreStats first;
    std::uint64_t firstDigest = 0;
    for (int threads : {1, 4}) {
        verify::ExplorerOptions opts;
        opts.threads = threads;
        opts.maxDepth = pc.depth;
        opts.maxStates = 200000;
        opts.storeKind = kind;
        auto ex = mod->makeExplorer(opts);
        verify::ExploreResult res = ex->run();
        EXPECT_FALSE(res.violated);
        EXPECT_EQ(res.stats.storeKind, kind);
        EXPECT_EQ(res.stats.lossyStore,
                  kind == verify::StoreKind::Bitstate);
        EXPECT_GT(res.stats.storeMemoryBytes, 0u);
        if (threads == 1) {
            first = res.stats;
            firstDigest = ex->stateDigest();
            if (kind != verify::StoreKind::Exact) {
                EXPECT_EQ(res.stats.states, refStates);
                EXPECT_EQ(res.stats.transitions, refTransitions);
                EXPECT_EQ(ex->stateDigest(), refDigest);
            }
        } else {
            EXPECT_EQ(res.stats.states, first.states);
            EXPECT_EQ(res.stats.transitions, first.transitions);
            EXPECT_EQ(res.stats.peakFrontier, first.peakFrontier);
            EXPECT_EQ(res.stats.depthReached, first.depthReached);
            EXPECT_EQ(res.stats.complete, first.complete);
            EXPECT_EQ(ex->stateDigest(), firstDigest);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperModulesAllKinds, VerifyStoreDeterminismTest,
    ::testing::Combine(
        ::testing::Values(PaperCase{"stack", "assemble", 8},
                          PaperCase{"stack", "checkcrc", 8},
                          PaperCase{"stack", "prochdr", 8},
                          PaperCase{"stack", "toplevel", 8},
                          PaperCase{"buffer", "producer", 8},
                          PaperCase{"buffer", "playback", 8},
                          PaperCase{"buffer", "blinker", 8},
                          PaperCase{"buffer", "buffer_top", 20}),
        ::testing::Values(verify::StoreKind::Exact,
                          verify::StoreKind::Compressed,
                          verify::StoreKind::Bitstate)));

// ---------------------------------------------------------------------------
// Partial-order reduction differentials vs the unreduced explorer
// ---------------------------------------------------------------------------

// Finite pure-par module: three arms awaiting private pure inputs with
// pure emissions — the shape whose composite input letters commute with
// their singleton chains.
const char* kFinitePureParSrc =
    "module m (input pure a, input pure b, input pure c,"
    " output pure oa, output pure ob, output pure oc) {"
    " while (1) {"
    "  par {"
    "    { await (a); emit (oa); }"
    "    { await (b); emit (ob); }"
    "    { await (c); emit (oc); }"
    "  }"
    "  await ();"
    " } }";

TEST(VerifyPor, FinitePureParStateSetMatchesUnreduced)
{
    auto mod = compileSrc(kFinitePureParSrc);
    auto base = mod->makeExplorer({});
    verify::ExploreResult rb = base->run();
    ASSERT_TRUE(rb.stats.complete);
    EXPECT_FALSE(rb.violated);

    verify::ExplorerOptions opts;
    opts.partialOrder = true;
    auto red = mod->makeExplorer(opts);
    verify::ExploreResult rr = red->run();
    ASSERT_TRUE(rr.stats.complete);
    EXPECT_FALSE(rr.violated);

    // The reduction must actually fire on this shape, skip work, and —
    // because every dropped composite letter commutes with a kept
    // singleton chain — still reach the IDENTICAL reachable set once
    // both runs complete (interning order differs; compare sets).
    EXPECT_GT(rr.stats.lettersReduced, 0u);
    EXPECT_LT(rr.stats.transitions, rb.stats.transitions);
    EXPECT_EQ(explorerStates(*red), explorerStates(*base));

    // The reduced explorer keeps thread-count determinism.
    opts.threads = 4;
    auto red4 = mod->makeExplorer(opts);
    verify::ExploreResult rr4 = red4->run();
    EXPECT_EQ(rr4.stats.states, rr.stats.states);
    EXPECT_EQ(rr4.stats.transitions, rr.stats.transitions);
    EXPECT_EQ(red4->stateDigest(), red->stateDigest());
}

TEST(VerifyPor, CorpusScenariosAgreeWithUnreduced)
{
    std::vector<corpus::Scenario> set =
        corpus::loadCorpusDir(ECL_CORPUS_DIR);
    ASSERT_GE(set.size(), 24u);
    int compared = 0;
    for (const corpus::Scenario& s : set) {
        std::shared_ptr<CompiledModule> mod;
        try {
            mod = corpus::compileScenario(s, 2);
        } catch (const EclError&) {
            continue;
        }
        if (!mod->hasFlatProgram()) continue;

        verify::ExplorerOptions opts;
        opts.maxDepth = 3;
        opts.maxStates = 4000;
        verify::ExploreResult base = mod->makeExplorer(opts)->run();
        opts.partialOrder = true;
        verify::ExploreResult red = mod->makeExplorer(opts)->run();

        // Reduction only ever skips work.
        EXPECT_LE(red.stats.states, base.stats.states) << s.name;
        EXPECT_LE(red.stats.transitions, base.stats.transitions) << s.name;
        // Every reduced behavior is an unreduced behavior: a reduced
        // violation must exist in the unreduced run too, and replay
        // bit-exactly on the production engine.
        if (red.violated) {
            EXPECT_TRUE(base.violated) << s.name;
            auto eng = mod->makeSyncEngine();
            verify::ReplayOutcome rp =
                verify::replayCounterexample(*eng, nullptr, red);
            EXPECT_TRUE(rp.reproduced) << s.name << ": " << rp.detail;
        }
        if (base.violated) {
            auto eng = mod->makeSyncEngine();
            verify::ReplayOutcome rp =
                verify::replayCounterexample(*eng, nullptr, base);
            EXPECT_TRUE(rp.reproduced) << s.name << ": " << rp.detail;
            // A complete reduced run covers every reachable behavior up
            // to commutation, so it cannot miss the verdict.
            if (red.stats.complete) EXPECT_TRUE(red.violated) << s.name;
        }
        if (base.stats.complete && red.stats.complete)
            EXPECT_EQ(red.violated, base.violated) << s.name;
        ++compared;
    }
    EXPECT_GE(compared, 24);
}

TEST(VerifyPor, GeneratedProgramsVerdictDifferential)
{
    // 200 generator programs (first compiling seeds from 1 up), each
    // explored with reduction off and on under identical bounds.
    int tested = 0;
    for (unsigned seed = 1; tested < 200 && seed < 4000; ++seed) {
        corpus::ProgramGen gen(seed, 3);
        std::shared_ptr<CompiledModule> mod;
        try {
            mod = compileSrc(gen.generate());
        } catch (const EclError&) {
            continue; // causality-rejected seed
        }
        if (!mod->hasFlatProgram()) continue;

        verify::ExplorerOptions opts;
        opts.maxDepth = 3;
        opts.maxStates = 1500;
        verify::ExploreResult base = mod->makeExplorer(opts)->run();
        opts.partialOrder = true;
        verify::ExploreResult red = mod->makeExplorer(opts)->run();

        EXPECT_LE(red.stats.states, base.stats.states) << "seed " << seed;
        EXPECT_LE(red.stats.transitions, base.stats.transitions)
            << "seed " << seed;
        if (red.violated) {
            EXPECT_TRUE(base.violated) << "seed " << seed;
            auto eng = mod->makeSyncEngine();
            verify::ReplayOutcome rp =
                verify::replayCounterexample(*eng, nullptr, red);
            EXPECT_TRUE(rp.reproduced)
                << "seed " << seed << ": " << rp.detail;
        }
        if (base.violated && red.stats.complete)
            EXPECT_TRUE(red.violated) << "seed " << seed;
        if (base.stats.complete && red.stats.complete)
            EXPECT_EQ(red.violated, base.violated) << "seed " << seed;
        ++tested;
    }
    EXPECT_EQ(tested, 200);
}

TEST(VerifyPor, PureParCorpusScenarioReducesAtLeast3x)
{
    // The acceptance bar: on the committed wide-par corpus scenario the
    // reduced run explores at least 3x fewer states than the unreduced
    // one under the same bounds, with the same (clean) verdict. The
    // exact counts are pinned — they are as deterministic as the corpus
    // digests themselves.
    std::vector<corpus::Scenario> set =
        corpus::loadCorpusDir(ECL_CORPUS_DIR);
    const corpus::Scenario* par = nullptr;
    for (const corpus::Scenario& s : set)
        if (s.name == "par_pure10") par = &s;
    ASSERT_NE(par, nullptr) << "par_pure10.scn missing from the corpus";
    auto mod = corpus::compileScenario(*par, 2);

    verify::ExplorerOptions opts;
    opts.maxDepth = 3;
    verify::ExploreResult base = mod->makeExplorer(opts)->run();
    opts.partialOrder = true;
    verify::ExploreResult red = mod->makeExplorer(opts)->run();

    EXPECT_FALSE(base.violated);
    EXPECT_FALSE(red.violated);
    EXPECT_EQ(base.stats.states, 1026u);
    EXPECT_EQ(red.stats.states, 59u);
    EXPECT_GT(red.stats.lettersReduced, 0u);
    EXPECT_GE(base.stats.states, 3 * red.stats.states);
}

// ---------------------------------------------------------------------------
// Native successor computation vs the VM
// ---------------------------------------------------------------------------

class VerifyNativeSuccTest : public ::testing::TestWithParam<PaperCase> {};

TEST_P(VerifyNativeSuccTest, StateSetMatchesVm)
{
    const PaperCase& pc = GetParam();
    auto mod = compilePaper(pc.source, pc.module);

    verify::ExplorerOptions opts;
    opts.maxDepth = pc.depth;
    opts.maxStates = 200000;
    auto vmEx = mod->makeExplorer(opts);
    verify::ExploreResult rv = vmEx->run();

    opts.nativeSuccessors = true;
    auto natEx = mod->makeExplorer(opts);
    verify::ExploreResult rn = natEx->run();
    if (!rn.stats.usedNativeSuccessors)
        GTEST_SKIP() << "no host C compiler; native successors fell back "
                        "to the VM";

    // Bit-exact agreement: same states in the same canonical order.
    EXPECT_EQ(rn.stats.states, rv.stats.states);
    EXPECT_EQ(rn.stats.transitions, rv.stats.transitions);
    EXPECT_EQ(rn.stats.complete, rv.stats.complete);
    EXPECT_EQ(natEx->stateDigest(), vmEx->stateDigest());
    EXPECT_EQ(rn.violated, rv.violated);
}

INSTANTIATE_TEST_SUITE_P(
    PaperModules, VerifyNativeSuccTest,
    ::testing::Values(PaperCase{"stack", "assemble", 8},
                      PaperCase{"stack", "toplevel", 8},
                      PaperCase{"buffer", "producer", 8},
                      PaperCase{"buffer", "buffer_top", 12}));

TEST(VerifyNativeSucc, ValuedModuleAgreesAndFallbackIsHonest)
{
    auto mod = compileSrc(kAccSrc);
    verify::ExplorerOptions opts;
    opts.maxDepth = 5;
    auto vmEx = mod->makeExplorer(opts);
    verify::ExploreResult rv = vmEx->run();
    EXPECT_FALSE(rv.stats.usedNativeSuccessors); // not requested

    opts.nativeSuccessors = true;
    auto natEx = mod->makeExplorer(opts);
    verify::ExploreResult rn = natEx->run();
    if (!rn.stats.usedNativeSuccessors)
        GTEST_SKIP() << "no host C compiler; native successors fell back "
                        "to the VM";
    EXPECT_EQ(rn.stats.states, rv.stats.states);
    EXPECT_EQ(natEx->stateDigest(), vmEx->stateDigest());
}

// ---------------------------------------------------------------------------
// Bitstate coverage in a fixed memory budget
// ---------------------------------------------------------------------------

TEST(VerifyStoreScaling, BitstateCoversTenTimesMoreStatesInBudget)
{
    // A generated deep-preemption program whose counter makes the data
    // state space effectively unbounded. The exact store stops when its
    // arena + index exceed the budget; the bitstate table — a few BITS
    // per state in the same budget — must cover >= 10x more states.
    auto mod = compileSrc(corpus::deepPreemptProgram(8));
    const std::uint64_t kBudget = 64 * 1024;

    verify::ExplorerOptions opts;
    opts.storeBudgetBytes = kBudget;
    verify::ExploreResult exact = mod->makeExplorer(opts)->run();
    ASSERT_FALSE(exact.stats.complete); // the budget is what stopped it
    ASSERT_GT(exact.stats.states, 0u);
    EXPECT_FALSE(exact.violated);

    verify::ExplorerOptions bopts;
    bopts.storeKind = verify::StoreKind::Bitstate;
    bopts.storeBudgetBytes = kBudget;
    bopts.maxStates =
        static_cast<std::uint32_t>(30 * exact.stats.states);
    verify::ExploreResult bit = mod->makeExplorer(bopts)->run();
    EXPECT_TRUE(bit.stats.lossyStore);
    EXPECT_LE(bit.stats.storeMemoryBytes, kBudget);
    EXPECT_FALSE(bit.violated);
    EXPECT_GE(bit.stats.states, 10 * exact.stats.states);
}

} // namespace
