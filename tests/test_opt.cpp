// Tests for the post-flatten optimization pipeline (src/opt).
//
// The load-bearing suites:
//  * differential — -O2 must be bit-exact with -O0 in every observable
//    (outputs, valued emissions, termination, auto-resume, runtime
//    traps) over all 8 paper modules and >= 1000 generated full-grammar
//    programs; -O1 additionally preserves instruction-level ExecCounters
//    exactly, and -O2's counters never exceed -O0's (every transform
//    only removes counted executions);
//  * pass-level pins — idempotence (optimize(optimize(p)) is a no-op),
//    stats monotonicity, a hand-built module whose known-bisimilar
//    states MUST merge, config-pool dedup, and fusion actually firing
//    on the hot chunks the bench speedup claims depend on.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/opt/opt.h"
#include "tests/ecl_program_gen.h"

namespace {

using namespace ecl;
using test::ProgramGen;
using test::runTrace;

std::shared_ptr<CompiledModule> compileAt(Compiler& compiler,
                                          const std::string& module,
                                          int optLevel)
{
    CompileOptions copts;
    copts.optLevel = optLevel;
    return compiler.compile(module, copts);
}

struct PaperCase {
    const char* source;
    const char* module;
};

void PrintTo(const PaperCase& c, std::ostream* os)
{
    *os << c.source << "/" << c.module;
}

Compiler paperCompiler(const PaperCase& pc)
{
    return Compiler(std::string(pc.source) == std::string("stack")
                        ? paper::protocolStackSource()
                        : paper::audioBufferSource());
}

const PaperCase kPaperCases[] = {
    {"stack", "assemble"}, {"stack", "checkcrc"},  {"stack", "prochdr"},
    {"stack", "toplevel"}, {"buffer", "producer"}, {"buffer", "playback"},
    {"buffer", "blinker"}, {"buffer", "buffer_top"}};

void expectCountersLe(const ExecCounters& o2, const ExecCounters& o0,
                      int instant)
{
    EXPECT_LE(o2.exprOps, o0.exprOps) << "instant " << instant;
    EXPECT_LE(o2.loads, o0.loads) << "instant " << instant;
    EXPECT_LE(o2.stores, o0.stores) << "instant " << instant;
    EXPECT_LE(o2.branches, o0.branches) << "instant " << instant;
    EXPECT_LE(o2.calls, o0.calls) << "instant " << instant;
    EXPECT_LE(o2.aggBytes, o0.aggBytes) << "instant " << instant;
}

void expectCountersEq(const ExecCounters& a, const ExecCounters& b,
                      int instant)
{
    EXPECT_EQ(a.exprOps, b.exprOps) << "instant " << instant;
    EXPECT_EQ(a.loads, b.loads) << "instant " << instant;
    EXPECT_EQ(a.stores, b.stores) << "instant " << instant;
    EXPECT_EQ(a.branches, b.branches) << "instant " << instant;
    EXPECT_EQ(a.calls, b.calls) << "instant " << instant;
    EXPECT_EQ(a.aggBytes, b.aggBytes) << "instant " << instant;
}

/// Lockstep drive of one module compiled at two levels: every
/// observable must agree instant by instant; engine-level counters
/// (treeTests/actionsRun/emitsRun — preserved by minimization, untouched
/// by the bytecode optimizer) must agree exactly; data ExecCounters obey
/// `counterMode`: 0 = exact equality, 1 = component-wise lhs <= rhs.
void driveLockstep(CompiledModule& lhs, CompiledModule& rhs,
                   unsigned stimulusSeed, int instants, int counterMode)
{
    ASSERT_TRUE(lhs.hasFlatProgram());
    ASSERT_TRUE(rhs.hasFlatProgram());
    auto a = lhs.makeEngine();
    auto b = rhs.makeEngine();
    const ModuleSema& sema = lhs.moduleSema();
    std::mt19937 rng(stimulusSeed * 2654435761u + 97u);
    a->react();
    b->react();
    for (int t = 0; t < instants; ++t) {
        for (const SignalInfo& s : sema.signals) {
            if (s.dir != SignalDir::Input) continue;
            if ((rng() & 3u) != 0) continue;
            if (s.pure) {
                a->setInput(s.index);
                b->setInput(s.index);
            } else {
                Value v(s.valueType);
                for (std::size_t i = 0; i < v.size(); ++i)
                    v.data()[i] = static_cast<std::uint8_t>(rng());
                a->setInputValue(s.index, v);
                b->setInputValue(s.index, std::move(v));
            }
        }
        rt::ReactionResult ra = a->react();
        rt::ReactionResult rb = b->react();
        for (const SignalInfo& s : sema.signals) {
            if (s.dir != SignalDir::Output) continue;
            ASSERT_EQ(a->outputPresent(s.index), b->outputPresent(s.index))
                << "instant " << t << " output " << s.name;
            if (!s.pure && a->outputPresent(s.index))
                ASSERT_TRUE(a->outputValue(s.index) ==
                            b->outputValue(s.index))
                    << "instant " << t << " value of " << s.name;
        }
        ASSERT_EQ(ra.terminated, rb.terminated) << "instant " << t;
        ASSERT_EQ(a->terminated(), b->terminated()) << "instant " << t;
        ASSERT_EQ(a->needsAutoResume(), b->needsAutoResume())
            << "instant " << t;
        ASSERT_EQ(ra.treeTests, rb.treeTests) << "instant " << t;
        ASSERT_EQ(ra.actionsRun, rb.actionsRun) << "instant " << t;
        ASSERT_EQ(ra.emitsRun, rb.emitsRun) << "instant " << t;
        ASSERT_EQ(ra.emittedOutputs, rb.emittedOutputs) << "instant " << t;
        if (counterMode == 0)
            expectCountersEq(ra.dataCounters, rb.dataCounters, t);
        else
            expectCountersLe(ra.dataCounters, rb.dataCounters, t);
    }
}

// ---------------------------------------------------------------------------
// Differential: -O2 and -O1 vs -O0 over the paper modules
// ---------------------------------------------------------------------------

class OptDifferentialTest : public ::testing::TestWithParam<PaperCase> {};

TEST_P(OptDifferentialTest, O2BitExactWithO0)
{
    Compiler compiler = paperCompiler(GetParam());
    auto o0 = compileAt(compiler, GetParam().module, 0);
    auto o2 = compileAt(compiler, GetParam().module, 2);
    for (unsigned seed = 1; seed <= 3; ++seed)
        driveLockstep(*o2, *o0, seed, 150, /*counterMode=*/1);
}

TEST_P(OptDifferentialTest, O1CounterExactWithO0)
{
    Compiler compiler = paperCompiler(GetParam());
    auto o0 = compileAt(compiler, GetParam().module, 0);
    auto o1 = compileAt(compiler, GetParam().module, 1);
    for (unsigned seed = 1; seed <= 2; ++seed)
        driveLockstep(*o1, *o0, seed, 100, /*counterMode=*/0);
}

INSTANTIATE_TEST_SUITE_P(AllPaperModules, OptDifferentialTest,
                         ::testing::ValuesIn(kPaperCases));

// ---------------------------------------------------------------------------
// Differential: >= 1000 generated full-grammar programs
// ---------------------------------------------------------------------------

TEST(OptGeneratedDifferential, ThousandProgramsO0VsO2)
{
    int compiled = 0;
    int rejected = 0;
    for (unsigned seed = 1; seed <= 1000; ++seed) {
        ProgramGen gen(seed);
        const std::string src = gen.generate();
        std::shared_ptr<CompiledModule> o0;
        std::shared_ptr<CompiledModule> o2;
        try {
            Compiler compiler(src);
            o0 = compileAt(compiler, "m", 0);
            o2 = compileAt(compiler, "m", 2);
        } catch (const EclError&) {
            ++rejected; // static causality; rarity asserted below
            continue;
        }
        ++compiled;
        ASSERT_TRUE(o0->hasFlatProgram()) << src;
        ASSERT_TRUE(o2->hasFlatProgram()) << src;
        auto e0 = o0->makeEngine();
        auto e2 = o2->makeEngine();
        std::string t0 = runTrace(*e0, seed * 31 + 7, 30);
        std::string t2 = runTrace(*e2, seed * 31 + 7, 30);
        ASSERT_EQ(t0, t2) << "seed " << seed << "\n" << src;
    }
    // The generator is tuned to produce overwhelmingly compilable
    // programs; a regression here silently guts the sweep's coverage.
    EXPECT_GE(compiled, 950) << rejected << " programs rejected";
}

// ---------------------------------------------------------------------------
// Pass-level pins
// ---------------------------------------------------------------------------

/// Semantic dump of the flat tables (source locations and consumed AST
/// pointers excluded) for idempotence comparison.
std::string dumpFlat(const efsm::FlatProgram& f)
{
    std::ostringstream out;
    out << "init " << f.initialState << " dead " << f.deadState << "\n";
    for (const efsm::FlatState& s : f.states)
        out << "S root=" << s.root << " cfg=" << s.config
            << " b=" << s.boot << " d=" << s.dead << " ar=" << s.autoResume
            << "\n";
    for (const efsm::FlatNode& n : f.nodes)
        out << "N a=[" << n.actionsBegin << "," << n.actionsEnd
            << ") t=" << n.testSignal << " p=" << n.predChunk
            << " T=" << n.onTrue << " F=" << n.onFalse
            << " next=" << n.nextState << " f=" << int(n.flags) << "\n";
    for (const efsm::FlatAction& a : f.actions)
        out << "A k=" << int(a.kind) << " o=" << a.isOutput
            << " s=" << a.signal << " c=" << a.chunk << "\n";
    for (const PauseSet& c : f.configs) out << "C " << c.hash() << "\n";
    return out.str();
}

std::string dumpCode(const bc::Program& p)
{
    std::ostringstream out;
    for (std::size_t c = 0; c < p.chunks.size(); ++c)
        out << "chunk " << c << " regs=" << p.chunks[c].numRegs
            << " expr=" << p.chunks[c].isExpr << "\n"
            << bc::disassemble(p, static_cast<int>(c));
    for (const bc::CompiledFunction& f : p.functions)
        out << "fn " << f.name << " -> " << f.chunk << "\n";
    return out.str();
}

TEST(OptPasses, PipelineIsIdempotent)
{
    for (const PaperCase& pc : kPaperCases) {
        SCOPED_TRACE(std::string(pc.source) + "/" + pc.module);
        Compiler compiler = paperCompiler(pc);
        auto mod = compileAt(compiler, pc.module, 0); // verbatim tables
        efsm::FlatProgram flat = mod->flatProgram();
        bc::Program code = mod->byteCode();
        opt::optimize(flat, code, 2);
        const std::string flat1 = dumpFlat(flat);
        const std::string code1 = dumpCode(code);
        opt::PipelineStats again = opt::optimize(flat, code, 2);
        EXPECT_EQ(flat1, dumpFlat(flat));
        EXPECT_EQ(code1, dumpCode(code));
        // The second run must find nothing left to do.
        EXPECT_EQ(again.minimize.mergedStates, 0u);
        EXPECT_EQ(again.minimize.unreachableStates, 0u);
        EXPECT_EQ(again.bytecode.chunksDeduped, 0u);
        EXPECT_EQ(again.bytecode.constantsFolded, 0u);
        EXPECT_EQ(again.bytecode.deadInstrsRemoved, 0u);
        EXPECT_EQ(again.bytecode.storesElided, 0u);
        EXPECT_EQ(again.bytecode.branchesSimplified, 0u);
        EXPECT_EQ(again.bytecode.jumpsThreaded, 0u);
        EXPECT_EQ(again.bytecode.instrsFused, 0u);
    }
}

TEST(OptPasses, StatsAreMonotone)
{
    for (const PaperCase& pc : kPaperCases) {
        SCOPED_TRACE(std::string(pc.source) + "/" + pc.module);
        Compiler compiler = paperCompiler(pc);
        auto mod = compileAt(compiler, pc.module, 2);
        const opt::PipelineStats& st = mod->optStats();
        EXPECT_EQ(st.level, 2);
        EXPECT_TRUE(st.minimized);
        EXPECT_TRUE(st.bytecodeOptimized);
        EXPECT_LE(st.minimize.statesAfter, st.minimize.statesBefore);
        EXPECT_LE(st.minimize.nodesAfter, st.minimize.nodesBefore);
        EXPECT_LE(st.minimize.actionsAfter, st.minimize.actionsBefore);
        EXPECT_LE(st.minimize.configsAfter, st.minimize.configsBefore);
        EXPECT_LE(st.bytecode.instrsAfter, st.bytecode.instrsBefore);
        EXPECT_LE(st.bytecode.chunksAfter, st.bytecode.chunksBefore);
        EXPECT_GT(st.minimize.refinementRounds, 0);
    }
}

// Hand-built module with two KNOWN bisimilar control states: the then
// branch waits for `a` once, the else branch twice — after the first
// else-await, the residual behavior ("await a, then emit o, restart") is
// exactly the then branch's wait state. Distinct pause points, so the
// builder must create two states; minimization must merge them.
const char* kBisimilarSrc =
    "module m (input pure a, input pure b, output pure o) {"
    " while (1) {"
    "  present (b) {"
    "   await (a);"
    "  } else {"
    "   await (a);"
    "   await (a);"
    "  }"
    "  emit (o);"
    " } }";

TEST(OptPasses, MinimizationMergesKnownBisimilarStates)
{
    Compiler compiler(kBisimilarSrc);
    auto o0 = compileAt(compiler, "m", 0);
    auto o1 = compileAt(compiler, "m", 1);
    const opt::PipelineStats& st = o1->optStats();
    EXPECT_GE(st.minimize.mergedStates, 1u);
    EXPECT_LT(o1->flatProgram().states.size(),
              o0->flatProgram().states.size());
    for (unsigned seed = 1; seed <= 5; ++seed)
        driveLockstep(*o1, *o0, seed, 60, /*counterMode=*/0);
}

TEST(OptPasses, ConfigPoolHasNoDuplicatesAndOnlyReferencedEntries)
{
    for (const std::string& src :
         {std::string(kBisimilarSrc), paper::protocolStackSource()}) {
        Compiler compiler(src);
        auto mod = compiler.compile(compiler.moduleNames().back());
        const efsm::FlatProgram& flat = mod->flatProgram();
        std::set<std::size_t> referenced;
        for (const efsm::FlatState& s : flat.states) {
            ASSERT_GE(s.config, 0);
            ASSERT_LT(static_cast<std::size_t>(s.config),
                      flat.configs.size());
            referenced.insert(static_cast<std::size_t>(s.config));
        }
        EXPECT_EQ(referenced.size(), flat.configs.size())
            << "unreferenced configs survive in the pool";
        for (std::size_t i = 0; i < flat.configs.size(); ++i)
            for (std::size_t j = i + 1; j < flat.configs.size(); ++j)
                EXPECT_FALSE(flat.configs[i] == flat.configs[j])
                    << "duplicate interned configs " << i << "," << j;
    }
}

TEST(OptPasses, FusionFiresOnHotChunks)
{
    // The bench speedup claim rests on superinstruction fusion hitting
    // the protocol stack's hot chunks (loop-bound predicates, the CRC
    // fold, scalar assignments). Pin that the optimized program actually
    // contains fused ops and got smaller.
    Compiler compiler(paper::protocolStackSource());
    auto o0 = compileAt(compiler, "toplevel", 0);
    auto o2 = compileAt(compiler, "toplevel", 2);
    const std::string d2 = dumpCode(o2->byteCode());
    EXPECT_NE(d2.find("binimm"), std::string::npos);
    EXPECT_NE(d2.find("stvsc"), std::string::npos);
    EXPECT_LT(o2->byteCode().code.size(), o0->byteCode().code.size());
    EXPECT_GT(o2->optStats().bytecode.instrsFused, 0u);
}

TEST(OptPasses, ZeroVarElisionSeesFusedOpsHiddenSlotAccesses)
{
    // Regression: AddrIndexVar reads its index variable straight from
    // the store and AddrVarOff takes a slot's address — accesses the
    // original LoadVarSc/AddrVar made visible to the ZeroVar-elision
    // scan until fusion + DCE removed them. The local `x` below is read
    // by its own initializer (value 0 on every entry thanks to the
    // declaration's ZeroVar) and overwritten at the end of the block;
    // eliding the ZeroVar would leak 1 into the next invocation's index
    // read and flip s from 0 to 9.
    Compiler compiler(
        "module m (input pure t, output int s) {"
        " int arr[4];"
        " int arr2[4];"
        " int out;"
        " while (1) {"
        "  await (t);"
        "  { arr[1] = 2; arr2[2] = 9; int x = arr2[arr[x]];"
        "    out = x; x = 1; }"
        "  emit_v (s, out);"
        " } }");
    auto o0 = compileAt(compiler, "m", 0);
    auto o2 = compileAt(compiler, "m", 2);
    auto e0 = o0->makeEngine();
    auto e2 = o2->makeEngine();
    e0->react();
    e2->react();
    for (int i = 0; i < 3; ++i) {
        e0->setInput("t");
        e2->setInput("t");
        e0->react();
        e2->react();
        ASSERT_EQ(e2->outputValue("s").toInt(), e0->outputValue("s").toInt())
            << "instant " << i;
        ASSERT_EQ(e0->outputValue("s").toInt(), 0) << "instant " << i;
    }
}

TEST(OptPasses, OptLevelZeroLeavesTablesVerbatim)
{
    Compiler compiler(paper::audioBufferSource());
    auto mod = compileAt(compiler, "buffer_top", 0);
    const opt::PipelineStats& st = mod->optStats();
    EXPECT_EQ(st.level, 0);
    EXPECT_FALSE(st.minimized);
    EXPECT_FALSE(st.bytecodeOptimized);
    // -O0 keeps the flatten-time invariant: state ids equal the Efsm's.
    EXPECT_EQ(mod->flatProgram().states.size(),
              mod->machine().states.size());
}

} // namespace
