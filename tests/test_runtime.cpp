// Runtime engine tests: SyncEngine/RcEngine parity, signal environment,
// instant lifecycle, counters.
#include <gtest/gtest.h>

#include "src/core/compiler.h"

namespace {

using namespace ecl;

TEST(SignalEnvTest, PresenceClearedPerInstant)
{
    Compiler compiler("module m (input int v, output int o) {"
                      " while (1) { await (v); emit_v (o, v); } }");
    auto mod = compiler.compile("m");
    rt::SignalEnv env(mod->moduleSema());
    env.setPresent(0);
    EXPECT_TRUE(env.isPresent(0));
    env.beginInstant();
    EXPECT_FALSE(env.isPresent(0));
}

TEST(SignalEnvTest, ValuePersistsAcrossInstants)
{
    Compiler compiler("module m (input int v, output int o) {"
                      " while (1) { await (v); emit_v (o, v); } }");
    auto mod = compiler.compile("m");
    rt::SignalEnv env(mod->moduleSema());
    const SignalInfo* v = mod->moduleSema().findSignal("v");
    env.setValue(v->index, Value::fromInt(v->valueType, 7));
    env.beginInstant();
    EXPECT_EQ(env.signalValue(v->index).toInt(), 7);
}

TEST(SignalEnvTest, PureSignalValueAccessThrows)
{
    Compiler compiler("module m (input pure p) { halt(); }");
    auto mod = compiler.compile("m");
    rt::SignalEnv env(mod->moduleSema());
    EXPECT_THROW(env.signalValue(0), EclError);
    EXPECT_THROW(env.setValue(0, Value{}), EclError);
}

TEST(EngineTest, InputApiValidation)
{
    Compiler compiler("module m (input pure p, input int v, output pure o)"
                      " { halt(); }");
    auto mod = compiler.compile("m");
    auto eng = mod->makeSyncEngine();
    EXPECT_THROW(eng->setInput("nosuch"), EclError);
    EXPECT_THROW(eng->setInput("o"), EclError);      // not an input
    EXPECT_THROW(eng->setInputScalar("p", 1), EclError); // pure
}

TEST(EngineTest, ReactionCountersPopulated)
{
    Compiler compiler("module m (input int v, output int o) {"
                      " int s; while (1) { await (v); s = s + v;"
                      " emit_v (o, s); } }");
    auto mod = compiler.compile("m");
    auto eng = mod->makeSyncEngine();
    eng->react();
    eng->setInputScalar("v", 3);
    rt::ReactionResult r = eng->react();
    EXPECT_GT(r.treeTests, 0u);
    EXPECT_GT(r.actionsRun, 0u);
    EXPECT_EQ(r.emitsRun, 1u);
    EXPECT_GT(r.dataCounters.total(), 0u);
    EXPECT_EQ(r.emittedOutputs.size(), 1u);
}

TEST(EngineTest, DataBytesReportsFootprint)
{
    Compiler compiler("typedef unsigned char byte;\n"
                      "module m (input byte v, output pure o) {"
                      " byte buf[32]; int n;"
                      " while (1) { await (v); buf[n % 32] = v; n++; } }");
    auto mod = compiler.compile("m");
    auto eng = mod->makeSyncEngine();
    EXPECT_GE(eng->dataBytes(), 32u + 4u + 1u);
}

/// Drives both engines with the same pseudo-random pure-signal stimulus and
/// compares full output traces.
void expectEnginesAgree(const std::string& src,
                        const std::vector<std::string>& inputs,
                        const std::vector<std::string>& outputs,
                        unsigned seed, int instants)
{
    Compiler compiler(src);
    auto mod = compiler.compile("m");
    auto efsm = mod->makeSyncEngine();
    auto rc = mod->makeBaselineEngine();
    efsm->react();
    rc->react();
    std::uint32_t rng = seed * 2654435761u + 1;
    for (int t = 0; t < instants; ++t) {
        for (const std::string& in : inputs) {
            rng = rng * 1664525u + 1013904223u;
            if ((rng >> 16) & 1) {
                efsm->setInput(in);
                rc->setInput(in);
            }
        }
        efsm->react();
        rc->react();
        for (const std::string& out : outputs)
            ASSERT_EQ(efsm->outputPresent(out), rc->outputPresent(out))
                << "instant " << t << " output " << out << " seed " << seed;
    }
}

TEST(DifferentialTest, AbortNest)
{
    const char* src =
        "module m (input pure a, input pure b, input pure t,"
        " output pure x, output pure y) {"
        " while (1) {"
        "  do {"
        "    do { while (1) { await (t); emit (x); } } abort (b)"
        "      handle { emit (y); }"
        "    halt ();"
        "  } abort (a);"
        " } }";
    for (unsigned seed = 1; seed <= 5; ++seed)
        expectEnginesAgree(src, {"a", "b", "t"}, {"x", "y"}, seed, 60);
}

TEST(DifferentialTest, SuspendedCounting)
{
    const char* src =
        "module m (input pure hold, input pure t, output pure fire) {"
        " while (1) {"
        "  do {"
        "    await (t); await (t); await (t); emit (fire);"
        "  } suspend (hold);"
        " } }";
    for (unsigned seed = 1; seed <= 5; ++seed)
        expectEnginesAgree(src, {"hold", "t"}, {"fire"}, seed, 60);
}

TEST(DifferentialTest, ParWithLocalSignals)
{
    const char* src =
        "module m (input pure go, input pure t, output pure done) {"
        " signal pure s;"
        " while (1) {"
        "  par {"
        "    { await (go); emit (s); }"
        "    { do { while (1) { await (t); } } abort (s); emit (done); }"
        "  }"
        " } }";
    for (unsigned seed = 1; seed <= 5; ++seed)
        expectEnginesAgree(src, {"go", "t"}, {"done"}, seed, 60);
}

TEST(DifferentialTest, WeakAbortWithData)
{
    const char* src =
        "module m (input pure stop, input int v, output int acc) {"
        " int s;"
        " do {"
        "  while (1) { await (v); s = s + v; emit_v (acc, s); }"
        " } weak_abort (stop);"
        " halt (); }";
    Compiler compiler(src);
    auto mod = compiler.compile("m");
    auto efsm = mod->makeSyncEngine();
    auto rc = mod->makeBaselineEngine();
    efsm->react();
    rc->react();
    for (int t = 0; t < 30; ++t) {
        if (t % 3 == 0) {
            efsm->setInputScalar("v", t);
            rc->setInputScalar("v", t);
        }
        if (t == 20) {
            efsm->setInput("stop");
            rc->setInput("stop");
        }
        efsm->react();
        rc->react();
        ASSERT_EQ(efsm->outputPresent("acc"), rc->outputPresent("acc"));
        if (efsm->outputPresent("acc"))
            ASSERT_EQ(efsm->outputValue("acc").toInt(),
                      rc->outputValue("acc").toInt());
    }
}

TEST(EngineTest, TerminatedBaselineStaysDead)
{
    Compiler compiler("module m (input pure a, output pure o) {"
                      " await (a); emit (o); }");
    auto mod = compiler.compile("m");
    auto rc = mod->makeBaselineEngine();
    rc->react();
    rc->setInput("a");
    rt::ReactionResult r = rc->react();
    EXPECT_TRUE(r.terminated);
    EXPECT_TRUE(rc->terminated());
    rc->setInput("a");
    r = rc->react();
    EXPECT_TRUE(r.terminated);
    EXPECT_FALSE(rc->outputPresent("o"));
}

} // namespace
