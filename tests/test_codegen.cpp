// Code generator tests: Esterel phase-1 artifacts, C software synthesis
// (validated with `gcc -fsyntax-only`), and Verilog hardware synthesis.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/codegen/c_gen.h"
#include "src/codegen/esterel_gen.h"
#include "src/codegen/verilog_gen.h"
#include "src/core/paper_sources.h"

namespace {

using namespace ecl;

// The AOT translation unit is self-contained C99 (its own ABI mirror,
// fail handler and load/store helpers) — no harness stubs needed.
bool gccSyntaxCheck(const std::string& cSource, std::string tag)
{
    std::string path = "/tmp/ecl_codegen_" + tag + ".c";
    {
        std::ofstream out(path);
        out << cSource;
    }
    std::string cmd = "gcc -std=c99 -fsyntax-only -Wall " + path + " 2>/tmp/ecl_gcc_" + tag + ".log";
    return std::system(cmd.c_str()) == 0;
}

TEST(EsterelGenTest, StackModuleContainsKernelConstructs)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("assemble");
    std::string strl = codegen::generateEsterel(
        mod->reactiveProgram(), mod->moduleSema(), mod->name());

    EXPECT_NE(strl.find("module assemble:"), std::string::npos);
    EXPECT_NE(strl.find("input reset;"), std::string::npos);
    EXPECT_NE(strl.find("input in_byte : integer;"), std::string::npos);
    EXPECT_NE(strl.find("output outpkt"), std::string::npos);
    EXPECT_NE(strl.find("pause;"), std::string::npos);
    EXPECT_NE(strl.find("loop"), std::string::npos);
    EXPECT_NE(strl.find("abort"), std::string::npos);
    EXPECT_NE(strl.find("when reset"), std::string::npos);
    EXPECT_NE(strl.find("trap"), std::string::npos);
    EXPECT_NE(strl.find("emit outpkt"), std::string::npos);
}

TEST(EsterelGenTest, ProchdrShowsParAndLocalSignal)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("prochdr");
    std::string strl = codegen::generateEsterel(
        mod->reactiveProgram(), mod->moduleSema(), mod->name());
    EXPECT_NE(strl.find("||"), std::string::npos);
    EXPECT_NE(strl.find("signal kill_check"), std::string::npos);
    EXPECT_NE(strl.find("when kill_check"), std::string::npos);
}

TEST(EsterelGenTest, DataFileCarriesExtractedLoop)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("checkcrc");
    std::string c = codegen::generateEsterelDataFile(
        mod->reactiveProgram(), mod->moduleSema(), mod->name());
    EXPECT_NE(c.find("void ecl_data_"), std::string::npos);
    EXPECT_NE(c.find("crc"), std::string::npos);
}

TEST(CGenTest, AssembleCompilesWithGcc)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("assemble");
    std::string c = codegen::generateC(*mod);
    EXPECT_TRUE(gccSyntaxCheck(c, "assemble")) << c.substr(0, 2000);
}

TEST(CGenTest, ToplevelCompilesWithGcc)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    std::string c = codegen::generateC(*mod);
    EXPECT_TRUE(gccSyntaxCheck(c, "toplevel"));
}

TEST(CGenTest, BufferTopCompilesWithGcc)
{
    Compiler compiler(paper::audioBufferSource());
    auto mod = compiler.compile("buffer_top");
    std::string c = codegen::generateC(*mod);
    EXPECT_TRUE(gccSyntaxCheck(c, "buffer_top"));
}

TEST(CGenTest, GeneratedCHasExpectedInterface)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    std::string c = codegen::generateC(*mod);
    // The dlopen contract: one info record + one reaction entry point
    // (src/runtime/native_abi.h).
    EXPECT_NE(c.find("const ecl_nat_info ecl_module_info"),
              std::string::npos);
    EXPECT_NE(c.find("int ecl_native_react(ecl_nat_ctx *c)"),
              std::string::npos);
    // Dense state dispatch: computed goto where available, a plain
    // switch elsewhere — both must be present in the emitted text.
    EXPECT_NE(c.find("goto *ecl_roots[c->state];"), std::string::npos);
    EXPECT_NE(c.find("switch (c->state)"), std::string::npos);
    // Traps longjmp through the shared failure path.
    EXPECT_NE(c.find("static void ecl_fail(ecl_nat_ctx *c"),
              std::string::npos);
    // The paper's array cast uses the little-endian helper.
    EXPECT_NE(c.find("ecl_ldle("), std::string::npos);
}

TEST(CGenTest, RejectsModuleWithoutFlatProgram)
{
    Compiler compiler(paper::protocolStackSource());
    CompileOptions opts;
    opts.flatten = false;
    auto mod = compiler.compile("assemble", opts);
    EXPECT_THROW(codegen::generateC(*mod), EclError);
}

TEST(VerilogGenTest, PureControlModulesSynthesize)
{
    Compiler compiler(paper::audioBufferSource());
    for (const char* name : {"producer", "playback", "blinker", "buffer_top"}) {
        auto mod = compiler.compile(name);
        codegen::HwReport report = codegen::generateVerilog(*mod);
        EXPECT_TRUE(report.synthesizable) << name << ": " << report.reason;
        EXPECT_GT(report.flipFlops, 0u) << name;
        EXPECT_GT(report.gateEstimate, 0u) << name;
        EXPECT_NE(report.verilog.find("module " + std::string(name)),
                  std::string::npos);
        EXPECT_NE(report.verilog.find("always @(posedge clk"),
                  std::string::npos);
        EXPECT_NE(report.verilog.find("endmodule"), std::string::npos);
    }
}

TEST(VerilogGenTest, DataPartRejectedPerPaperRule)
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("checkcrc");
    codegen::HwReport report = codegen::generateVerilog(*mod);
    EXPECT_FALSE(report.synthesizable);
    EXPECT_NE(report.reason.find("data"), std::string::npos);
}

TEST(VerilogGenTest, BufferTopGateEstimateGrowsWithProduct)
{
    Compiler compiler(paper::audioBufferSource());
    auto top = compiler.compile("buffer_top");
    auto blink = compiler.compile("blinker");
    codegen::HwReport rTop = codegen::generateVerilog(*top);
    codegen::HwReport rBlink = codegen::generateVerilog(*blink);
    ASSERT_TRUE(rTop.synthesizable);
    ASSERT_TRUE(rBlink.synthesizable);
    EXPECT_GT(rTop.gateEstimate, 3 * rBlink.gateEstimate);
}

} // namespace
