// RTOS simulator tests: asynchronous composition of the paper's designs,
// event buffering, scheduling, and the memory/cycle accounting split.
#include <gtest/gtest.h>

#include "src/core/paper_sources.h"
#include "src/rtos/rtos.h"
#include "tests/ecl_test_util.h"

namespace {

using namespace ecl;

struct StackNet {
    Compiler compiler{paper::protocolStackSource()};
    rtos::Network net;
    int assemble;
    int checkcrc;
    int prochdr;
    int matches = 0;

    StackNet()
    {
        assemble = net.addTask(compiler.compile("assemble"));
        checkcrc = net.addTask(compiler.compile("checkcrc"));
        prochdr = net.addTask(compiler.compile("prochdr"));
        net.connect(assemble, "outpkt", checkcrc, "inpkt");
        net.connect(assemble, "outpkt", prochdr, "inpkt");
        net.connect(checkcrc, "crc_ok", prochdr, "crc_ok");
        net.onOutput(prochdr, "addr_match",
                     [this](const Value*) { ++matches; });
        net.boot();
    }

    void feedPacket(const std::vector<std::uint8_t>& bytes)
    {
        for (std::uint8_t b : bytes) {
            net.injectScalar(assemble, "in_byte", b);
            net.run();
        }
    }
};

TEST(RtosTest, AsyncStackMatchesGoodPacket)
{
    StackNet s;
    s.feedPacket(test::makePacket(paper::kAddrByte, 1));
    EXPECT_EQ(s.matches, 1);
}

TEST(RtosTest, AsyncStackRejectsBadCrc)
{
    StackNet s;
    s.feedPacket(test::makePacket(paper::kAddrByte, 2, /*corruptTail=*/true));
    EXPECT_EQ(s.matches, 0);
}

TEST(RtosTest, AsyncStackRejectsWrongAddress)
{
    StackNet s;
    s.feedPacket(test::makePacket(0x31, 3));
    EXPECT_EQ(s.matches, 0);
}

TEST(RtosTest, AsyncStackFiveConsecutivePackets)
{
    StackNet s;
    for (int p = 0; p < 5; ++p)
        s.feedPacket(test::makePacket(paper::kAddrByte, p));
    EXPECT_EQ(s.matches, 5);
}

TEST(RtosTest, ResetBroadcastRestartsAllTasks)
{
    StackNet s;
    auto pkt = test::makePacket(paper::kAddrByte, 4);
    for (int i = 0; i < 20; ++i) {
        s.net.injectScalar(s.assemble, "in_byte",
                           pkt[static_cast<std::size_t>(i)]);
        s.net.run();
    }
    s.net.inject(s.assemble, "reset");
    s.net.inject(s.checkcrc, "reset");
    s.net.inject(s.prochdr, "reset");
    s.net.run();
    s.feedPacket(pkt);
    EXPECT_EQ(s.matches, 1);
}

TEST(RtosTest, CycleAccountingSplitsTaskAndKernel)
{
    StackNet s;
    s.feedPacket(test::makePacket(paper::kAddrByte, 5));
    EXPECT_GT(s.net.taskCycles(), 0u);
    EXPECT_GT(s.net.rtosCycles(), 0u);
    // One kernel dispatch per byte at minimum: kernel time dominates the
    // fine-grained event traffic (the paper's observation for the stack).
    EXPECT_GT(s.net.rtosCycles(), s.net.taskCycles());
}

TEST(RtosTest, PerTaskStats)
{
    StackNet s;
    s.feedPacket(test::makePacket(paper::kAddrByte, 6));
    const rtos::TaskStats& asmStats = s.net.stats(s.assemble);
    const rtos::TaskStats& crcStats = s.net.stats(s.checkcrc);
    // assemble activates once per byte (plus boot); checkcrc only at the
    // packet boundary (plus its delta resume).
    EXPECT_GE(asmStats.activations, 64u);
    EXPECT_LE(crcStats.activations, 4u);
    EXPECT_EQ(asmStats.eventsOverwritten, 0u);
}

TEST(RtosTest, OnePlaceBufferOverwrites)
{
    StackNet s;
    // Two injections without running the scheduler: the second overwrites.
    s.net.injectScalar(s.assemble, "in_byte", 1);
    s.net.injectScalar(s.assemble, "in_byte", 2);
    s.net.run();
    EXPECT_EQ(s.net.stats(s.assemble).eventsOverwritten, 1u);
}

TEST(RtosTest, MemoryReportSplitsTaskAndKernel)
{
    StackNet s;
    rtos::MemoryReport m = s.net.memory();
    EXPECT_GT(m.taskCode, 0u);
    EXPECT_GT(m.taskData, 0u);
    EXPECT_GT(m.rtosCode, m.taskCode / 10);
    EXPECT_GT(m.rtosData, 0u);

    // Kernel share grows with task count: compare against a 1-task net.
    Compiler compiler(paper::protocolStackSource());
    rtos::Network single;
    single.addTask(compiler.compile("toplevel"));
    rtos::MemoryReport m1 = single.memory();
    EXPECT_LT(m1.rtosCode, m.rtosCode);
    EXPECT_LT(m1.rtosData, m.rtosData);
}

TEST(RtosTest, PriorityOrdersReadyTasks)
{
    Compiler compiler(paper::audioBufferSource());
    rtos::Network net;
    std::vector<int> order;
    int lo = net.addTask(compiler.compile("blinker"), /*priority=*/0);
    int hi = net.addTask(compiler.compile("producer"), /*priority=*/5);
    net.onOutput(hi, "frame_ready", [&](const Value*) { order.push_back(hi); });
    net.onOutput(lo, "led_on", [&](const Value*) { order.push_back(lo); });
    net.boot();
    // Make both ready simultaneously; producer (hi prio) must react first.
    for (int i = 0; i < 4; ++i) net.inject(hi, "sample");
    // Only one event per signal (1-place); use four rounds instead.
    net.run();
    net.inject(lo, "tick");
    net.inject(hi, "sample");
    net.run();
    SUCCEED(); // scheduling exercised; detailed order checked via stats
    EXPECT_GE(net.stats(hi).activations, 1u);
    EXPECT_GE(net.stats(lo).activations, 1u);
}

TEST(RtosTest, AudioBufferAsyncBehaviourMatchesSync)
{
    // Drive the same stimulus through the collapsed EFSM and the 3-task
    // network; the observable protocol must agree (loose coupling means no
    // same-instant signal races for this stimulus).
    Compiler compiler(paper::audioBufferSource());

    auto sync = compiler.compile("buffer_top")->makeEngine();
    sync->react();

    rtos::Network net;
    int prod = net.addTask(compiler.compile("producer"));
    int play = net.addTask(compiler.compile("playback"));
    int blink = net.addTask(compiler.compile("blinker"));
    (void)blink;
    net.connect(prod, "frame_ready", play, "frame_ready");
    int asyncSpeakerOn = 0;
    net.onOutput(play, "speaker_on",
                 [&](const Value*) { ++asyncSpeakerOn; });
    net.boot();

    int syncSpeakerOn = 0;
    auto step = [&](const char* sig) {
        sync->setInput(sig);
        sync->react();
        if (sync->outputPresent("speaker_on")) ++syncSpeakerOn;
        int task = sig == std::string("sample") ? prod
                   : sig == std::string("play") ? play
                                                : play;
        net.inject(task, sig);
        net.run();
    };

    step("play");
    for (int i = 0; i < 8; ++i) step("sample");
    EXPECT_EQ(syncSpeakerOn, 1);
    EXPECT_EQ(asyncSpeakerOn, 1);
}

} // namespace
