// RTOS simulator tests: asynchronous composition of the paper's designs,
// event buffering, scheduling, and the memory/cycle accounting split.
#include <gtest/gtest.h>

#include <random>

#include "src/core/paper_sources.h"
#include "src/rtos/rtos.h"
#include "tests/ecl_test_util.h"

namespace {

using namespace ecl;

struct StackNet {
    Compiler compiler{paper::protocolStackSource()};
    rtos::Network net;
    int assemble;
    int checkcrc;
    int prochdr;
    int matches = 0;

    explicit StackNet(bool batchTasks = false)
        : net(cost::CostModel{}, rtos::NetworkOptions{batchTasks})
    {
        assemble = net.addTask(compiler.compile("assemble"));
        checkcrc = net.addTask(compiler.compile("checkcrc"));
        prochdr = net.addTask(compiler.compile("prochdr"));
        net.connect(assemble, "outpkt", checkcrc, "inpkt");
        net.connect(assemble, "outpkt", prochdr, "inpkt");
        net.connect(checkcrc, "crc_ok", prochdr, "crc_ok");
        net.onOutput(prochdr, "addr_match",
                     [this](const Value*) { ++matches; });
        net.boot();
    }

    void feedPacket(const std::vector<std::uint8_t>& bytes)
    {
        for (std::uint8_t b : bytes) {
            net.injectScalar(assemble, "in_byte", b);
            net.run();
        }
    }
};

TEST(RtosTest, AsyncStackMatchesGoodPacket)
{
    StackNet s;
    s.feedPacket(test::makePacket(paper::kAddrByte, 1));
    EXPECT_EQ(s.matches, 1);
}

TEST(RtosTest, AsyncStackRejectsBadCrc)
{
    StackNet s;
    s.feedPacket(test::makePacket(paper::kAddrByte, 2, /*corruptTail=*/true));
    EXPECT_EQ(s.matches, 0);
}

TEST(RtosTest, AsyncStackRejectsWrongAddress)
{
    StackNet s;
    s.feedPacket(test::makePacket(0x31, 3));
    EXPECT_EQ(s.matches, 0);
}

TEST(RtosTest, AsyncStackFiveConsecutivePackets)
{
    StackNet s;
    for (int p = 0; p < 5; ++p)
        s.feedPacket(test::makePacket(paper::kAddrByte, p));
    EXPECT_EQ(s.matches, 5);
}

TEST(RtosTest, ResetBroadcastRestartsAllTasks)
{
    StackNet s;
    auto pkt = test::makePacket(paper::kAddrByte, 4);
    for (int i = 0; i < 20; ++i) {
        s.net.injectScalar(s.assemble, "in_byte",
                           pkt[static_cast<std::size_t>(i)]);
        s.net.run();
    }
    s.net.inject(s.assemble, "reset");
    s.net.inject(s.checkcrc, "reset");
    s.net.inject(s.prochdr, "reset");
    s.net.run();
    s.feedPacket(pkt);
    EXPECT_EQ(s.matches, 1);
}

TEST(RtosTest, CycleAccountingSplitsTaskAndKernel)
{
    StackNet s;
    s.feedPacket(test::makePacket(paper::kAddrByte, 5));
    EXPECT_GT(s.net.taskCycles(), 0u);
    EXPECT_GT(s.net.rtosCycles(), 0u);
    // One kernel dispatch per byte at minimum: kernel time dominates the
    // fine-grained event traffic (the paper's observation for the stack).
    EXPECT_GT(s.net.rtosCycles(), s.net.taskCycles());
}

TEST(RtosTest, PerTaskStats)
{
    StackNet s;
    s.feedPacket(test::makePacket(paper::kAddrByte, 6));
    const rtos::TaskStats& asmStats = s.net.stats(s.assemble);
    const rtos::TaskStats& crcStats = s.net.stats(s.checkcrc);
    // assemble activates once per byte (plus boot); checkcrc only at the
    // packet boundary (plus its delta resume).
    EXPECT_GE(asmStats.activations, 64u);
    EXPECT_LE(crcStats.activations, 4u);
    EXPECT_EQ(asmStats.eventsOverwritten, 0u);
}

TEST(RtosTest, OnePlaceBufferOverwrites)
{
    StackNet s;
    // Two injections without running the scheduler: the second overwrites.
    s.net.injectScalar(s.assemble, "in_byte", 1);
    s.net.injectScalar(s.assemble, "in_byte", 2);
    s.net.run();
    EXPECT_EQ(s.net.stats(s.assemble).eventsOverwritten, 1u);
}

TEST(RtosTest, MemoryReportSplitsTaskAndKernel)
{
    StackNet s;
    rtos::MemoryReport m = s.net.memory();
    EXPECT_GT(m.taskCode, 0u);
    EXPECT_GT(m.taskData, 0u);
    EXPECT_GT(m.rtosCode, m.taskCode / 10);
    EXPECT_GT(m.rtosData, 0u);

    // Kernel share grows with task count: compare against a 1-task net.
    Compiler compiler(paper::protocolStackSource());
    rtos::Network single;
    single.addTask(compiler.compile("toplevel"));
    rtos::MemoryReport m1 = single.memory();
    EXPECT_LT(m1.rtosCode, m.rtosCode);
    EXPECT_LT(m1.rtosData, m.rtosData);
}

TEST(RtosTest, PriorityOrdersReadyTasks)
{
    Compiler compiler(paper::audioBufferSource());
    rtos::Network net;
    std::vector<int> order;
    int lo = net.addTask(compiler.compile("blinker"), /*priority=*/0);
    int hi = net.addTask(compiler.compile("producer"), /*priority=*/5);
    net.onOutput(hi, "frame_ready", [&](const Value*) { order.push_back(hi); });
    net.onOutput(lo, "led_on", [&](const Value*) { order.push_back(lo); });
    net.boot();
    // Make both ready simultaneously; producer (hi prio) must react first.
    for (int i = 0; i < 4; ++i) net.inject(hi, "sample");
    // Only one event per signal (1-place); use four rounds instead.
    net.run();
    net.inject(lo, "tick");
    net.inject(hi, "sample");
    net.run();
    SUCCEED(); // scheduling exercised; detailed order checked via stats
    EXPECT_GE(net.stats(hi).activations, 1u);
    EXPECT_GE(net.stats(lo).activations, 1u);
}

TEST(RtosTest, AudioBufferAsyncBehaviourMatchesSync)
{
    // Drive the same stimulus through the collapsed EFSM and the 3-task
    // network; the observable protocol must agree (loose coupling means no
    // same-instant signal races for this stimulus).
    Compiler compiler(paper::audioBufferSource());

    auto sync = compiler.compile("buffer_top")->makeEngine();
    sync->react();

    rtos::Network net;
    int prod = net.addTask(compiler.compile("producer"));
    int play = net.addTask(compiler.compile("playback"));
    int blink = net.addTask(compiler.compile("blinker"));
    (void)blink;
    net.connect(prod, "frame_ready", play, "frame_ready");
    int asyncSpeakerOn = 0;
    net.onOutput(play, "speaker_on",
                 [&](const Value*) { ++asyncSpeakerOn; });
    net.boot();

    int syncSpeakerOn = 0;
    auto step = [&](const char* sig) {
        sync->setInput(sig);
        sync->react();
        if (sync->outputPresent("speaker_on")) ++syncSpeakerOn;
        int task = sig == std::string("sample") ? prod
                   : sig == std::string("play") ? play
                                                : play;
        net.inject(task, sig);
        net.run();
    };

    step("play");
    for (int i = 0; i < 8; ++i) step("sample");
    EXPECT_EQ(syncSpeakerOn, 1);
    EXPECT_EQ(asyncSpeakerOn, 1);
}

// --- regression pins: 1-place buffering + dispatch determinism ---------------
//
// These pin the scheduler's observable contract so the batch-backed Network
// path (NetworkOptions::batchTasks) can be diffed against it exactly.

TEST(RtosTest, OnePlaceBufferOverwriteCountPinned)
{
    StackNet s;
    // Three injections with no scheduler run in between: a 1-place buffer
    // keeps only the newest event, so exactly two overwrites and one
    // consumption.
    s.net.injectScalar(s.assemble, "in_byte", 1);
    s.net.injectScalar(s.assemble, "in_byte", 2);
    s.net.injectScalar(s.assemble, "in_byte", 3);
    s.net.run();
    EXPECT_EQ(s.net.stats(s.assemble).eventsOverwritten, 2u);
    EXPECT_EQ(s.net.stats(s.assemble).eventsConsumed, 1u);
    // The overwritten events never reached the task: after a reset
    // broadcast a good packet still matches.
    s.net.inject(s.assemble, "reset");
    s.net.inject(s.checkcrc, "reset");
    s.net.inject(s.prochdr, "reset");
    s.net.run();
    s.feedPacket(test::makePacket(paper::kAddrByte, 9));
    EXPECT_EQ(s.matches, 1);
}

/// Seeded random burst scenario over the audio-buffer tasks; returns every
/// observable the scheduler produces (per-task stats, hook firing order,
/// cycle split).
struct DispatchRun {
    std::vector<std::uint64_t> stats; ///< 4 counters per task, flattened.
    std::vector<int> outputOrder;     ///< Hook tags in firing order.
    std::uint64_t taskCycles = 0;
    std::uint64_t rtosCycles = 0;
};

DispatchRun runDispatchScenario(unsigned seed, bool batchTasks)
{
    Compiler compiler(paper::audioBufferSource());
    rtos::Network net(cost::CostModel{}, rtos::NetworkOptions{batchTasks});
    int prod = net.addTask(compiler.compile("producer"), /*priority=*/2);
    int play = net.addTask(compiler.compile("playback"), /*priority=*/1);
    int blink = net.addTask(compiler.compile("blinker"), /*priority=*/0);
    net.connect(prod, "frame_ready", play, "frame_ready");
    DispatchRun r;
    net.onOutput(play, "speaker_on",
                 [&](const Value*) { r.outputOrder.push_back(1); });
    net.onOutput(play, "speaker_off",
                 [&](const Value*) { r.outputOrder.push_back(2); });
    net.onOutput(blink, "led_on",
                 [&](const Value*) { r.outputOrder.push_back(3); });
    net.onOutput(blink, "led_off",
                 [&](const Value*) { r.outputOrder.push_back(4); });
    net.boot();
    std::mt19937 rng(seed);
    for (int round = 0; round < 60; ++round) {
        // A burst of injections before each run-to-quiescence makes
        // several tasks ready simultaneously — priority + FIFO order is
        // what decides, and it must be a pure function of the seed.
        for (int k = 0; k < 3; ++k) {
            switch (rng() % 4u) {
            case 0: net.inject(prod, "sample"); break;
            case 1: net.inject(play, "play"); break;
            case 2: net.inject(play, "stop"); break;
            default: net.inject(blink, "tick"); break;
            }
        }
        net.run();
    }
    for (int task : {prod, play, blink}) {
        const rtos::TaskStats& st = net.stats(task);
        r.stats.insert(r.stats.end(),
                       {st.activations, st.eventsConsumed,
                        st.eventsOverwritten, st.taskCycles});
    }
    r.taskCycles = net.taskCycles();
    r.rtosCycles = net.rtosCycles();
    return r;
}

TEST(RtosTest, DispatchDeterminismSameSeedSameStats)
{
    DispatchRun a = runDispatchScenario(42, /*batchTasks=*/false);
    DispatchRun b = runDispatchScenario(42, /*batchTasks=*/false);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.outputOrder, b.outputOrder);
    EXPECT_EQ(a.taskCycles, b.taskCycles);
    EXPECT_EQ(a.rtosCycles, b.rtosCycles);
    // A different seed drives a different schedule (the pin is not vacuous).
    DispatchRun c = runDispatchScenario(43, /*batchTasks=*/false);
    EXPECT_NE(a.outputOrder, c.outputOrder);
}

TEST(RtosTest, BatchBackedDispatchMatchesPerTaskEngines)
{
    DispatchRun a = runDispatchScenario(77, /*batchTasks=*/false);
    DispatchRun b = runDispatchScenario(77, /*batchTasks=*/true);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.outputOrder, b.outputOrder);
    EXPECT_EQ(a.taskCycles, b.taskCycles);
    EXPECT_EQ(a.rtosCycles, b.rtosCycles);
}

TEST(RtosTest, BatchBackedStackMatchesPerTask)
{
    StackNet per(/*batchTasks=*/false);
    StackNet batch(/*batchTasks=*/true);
    EXPECT_FALSE(per.net.taskIsBatchBacked(per.assemble));
    EXPECT_TRUE(batch.net.taskIsBatchBacked(batch.assemble));
    for (int p = 0; p < 3; ++p) {
        auto pkt = test::makePacket(paper::kAddrByte, p, /*corruptTail=*/p == 1);
        per.feedPacket(pkt);
        batch.feedPacket(pkt);
    }
    EXPECT_EQ(per.matches, 2);
    EXPECT_EQ(batch.matches, per.matches);
    for (int task : {0, 1, 2}) {
        const rtos::TaskStats& a = per.net.stats(task);
        const rtos::TaskStats& b = batch.net.stats(task);
        EXPECT_EQ(a.activations, b.activations) << "task " << task;
        EXPECT_EQ(a.eventsConsumed, b.eventsConsumed) << "task " << task;
        EXPECT_EQ(a.eventsOverwritten, b.eventsOverwritten)
            << "task " << task;
        EXPECT_EQ(a.taskCycles, b.taskCycles) << "task " << task;
    }
    EXPECT_EQ(per.net.taskCycles(), batch.net.taskCycles());
    EXPECT_EQ(per.net.rtosCycles(), batch.net.rtosCycles());
}

TEST(RtosTest, SameModuleTasksShareOneBatchAndStayIndependent)
{
    Compiler compiler(paper::audioBufferSource());
    auto blinkMod = compiler.compile("blinker");
    rtos::Network net(cost::CostModel{}, rtos::NetworkOptions{true});
    int a = net.addTask(blinkMod, 0);
    int b = net.addTask(blinkMod, 0);
    ASSERT_TRUE(net.taskIsBatchBacked(a));
    ASSERT_TRUE(net.taskIsBatchBacked(b));
    int aOn = 0;
    int bOn = 0;
    net.onOutput(a, "led_on", [&](const Value*) { ++aOn; });
    net.onOutput(b, "led_on", [&](const Value*) { ++bOn; });
    net.boot();
    // The first tick turns the LED on: ticking only task a must not
    // advance task b's control state through the shared arena.
    net.inject(a, "tick");
    net.run();
    EXPECT_EQ(aOn, 1);
    EXPECT_EQ(bOn, 0);
    net.inject(b, "tick");
    net.run();
    EXPECT_EQ(aOn, 1);
    EXPECT_EQ(bOn, 1);
}

} // namespace
