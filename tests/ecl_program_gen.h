// Forwarder: the seeded full-kernel-grammar program generator was
// promoted into the corpus subsystem (src/corpus/program_gen.h) so the
// persisted scenario corpus (tests/corpus/, tools/corpusgen) and the
// test suites share one scenario engine. Existing suites keep their
// ecl::test spelling.
#pragma once

#include "src/corpus/program_gen.h"

namespace ecl::test {

using corpus::ProgramGen;
using corpus::runTrace;

} // namespace ecl::test
