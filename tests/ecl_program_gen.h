// Seeded random ECL program generator over the FULL kernel grammar,
// shared by the property suites (tests/test_properties.cpp) and the
// optimizer differential suite (tests/test_opt.cpp).
//
// Every generated module is named `m` and has the fixed interface
//   input pure i0..i2, input int v0..v1,
//   output pure o0..o1, output int vo0
// plus module variables x0/x1, an int array a0[4] (indices masked
// in-bounds so programs stay trap-free at every optimization level),
// pure local signals l<N> and valued local signals w<N>. Bodies are
// built from the reactive kernel with bounded depth: await (signal
// expressions over pure AND valued signals), delta awaits, emit /
// emit_v, halt, present, strong/weak abort (with handlers), suspend,
// parallel (signal-communicating and data-carrying branches), reactive
// `if` over C conditions, inner reactive `while` loops exited with
// `break` (the kernel's trap/exit), and interleaved C data actions on
// the module variables. Every repeating path contains a halting
// statement, so generation never produces instantaneous loops; static
// causality can still reject a program (emitter/tester cycles inside
// par) — suites skip those, and the rejection rate stays low because
// par communication always emits a fresh local in the first branch.
//
// Generation is deterministic per seed: generate() is a pure function
// of the constructor arguments.
#pragma once

#include <random>
#include <sstream>
#include <string>

#include "src/runtime/engine.h"

namespace ecl::test {

class ProgramGen {
public:
    static constexpr int kPureInputs = 3;    ///< i0..i2
    static constexpr int kValuedInputs = 2;  ///< v0..v1 : int
    static constexpr int kPureOutputs = 2;   ///< o0..o1
    static constexpr int kValuedOutputs = 1; ///< vo0 : int
    static constexpr int kVars = 2;          ///< x0..x1 : int
    static constexpr int kArraySize = 4;     ///< a0[kArraySize] : int

    explicit ProgramGen(unsigned seed, int depth = 3)
        : rng_(seed), depth_(depth)
    {
    }

    std::string generate()
    {
        locals_ = 0;
        valuedLocals_ = 0;
        temps_ = 0;
        std::ostringstream out;
        out << "module m (";
        for (int i = 0; i < kPureInputs; ++i)
            out << (i ? ", " : "") << "input pure i" << i;
        for (int v = 0; v < kValuedInputs; ++v)
            out << ", input int v" << v;
        for (int o = 0; o < kPureOutputs; ++o)
            out << ", output pure o" << o;
        for (int o = 0; o < kValuedOutputs; ++o)
            out << ", output int vo" << o;
        out << ")\n{\n";
        std::string body = haltingStmt(depth_);
        for (int x = 0; x < kVars; ++x)
            out << "    int x" << x << ";\n";
        out << "    int a0[" << kArraySize << "];\n";
        for (int l = 0; l < locals_; ++l)
            out << "    signal pure l" << l << ";\n";
        for (int w = 0; w < valuedLocals_; ++w)
            out << "    signal int w" << w << ";\n";
        for (int x = 0; x < kVars; ++x)
            out << "    x" << x << " = " << pick(4) << ";\n";
        // Wrap in a loop so traces are long; body always halts.
        out << "    while (1) {\n" << body << "    }\n}\n";
        return out.str();
    }

private:
    int pick(int n)
    {
        return std::uniform_int_distribution<int>(0, n - 1)(rng_);
    }

    /// One signal name for presence tests: inputs (pure and valued) and
    /// any local declared so far.
    std::string sig()
    {
        int k = pick(kPureInputs + kValuedInputs + locals_ + valuedLocals_);
        if (k < kPureInputs) return "i" + std::to_string(k);
        k -= kPureInputs;
        if (k < kValuedInputs) return "v" + std::to_string(k);
        k -= kValuedInputs;
        if (k < locals_) return "l" + std::to_string(k);
        return "w" + std::to_string(k - locals_);
    }

    std::string sigExpr()
    {
        switch (pick(4)) {
        case 0: return sig();
        case 1: return "~" + sig();
        case 2: return sig() + " & " + sig();
        default: return sig() + " | " + sig();
        }
    }

    std::string pureEmitTarget()
    {
        int k = pick(kPureOutputs + locals_);
        if (k < kPureOutputs) return "o" + std::to_string(k);
        return "l" + std::to_string(k - kPureOutputs);
    }

    std::string valuedEmitTarget()
    {
        // One time in three, mint a fresh valued local so `signal int
        // w<N>` declarations (and their value reads in dataTerm) are
        // actually exercised.
        int k = pick(kValuedOutputs + valuedLocals_ + 1);
        if (k < kValuedOutputs) return "vo" + std::to_string(k);
        k -= kValuedOutputs;
        if (k < valuedLocals_) return "w" + std::to_string(k);
        return "w" + std::to_string(valuedLocals_++);
    }

    /// An always-in-bounds index into a0 (masking keeps generated
    /// programs trap-free at every opt level).
    std::string arrayRef(int var)
    {
        return "a0[(" + dataTerm(var) + " & " +
               std::to_string(kArraySize - 1) + ")]";
    }

    /// An int-valued C term: literal, module variable, or the most
    /// recent value of a valued signal. `var` restricts variable reads
    /// to x<var> (parallel data branches keep disjoint variable sets).
    std::string dataTerm(int var)
    {
        switch (pick(5)) {
        case 0: return std::to_string(pick(4));
        case 1:
            return "x" + std::to_string(var >= 0 ? var : pick(kVars));
        case 2: return "v" + std::to_string(pick(kValuedInputs));
        case 3:
            return "a0[" + std::to_string(pick(kArraySize)) + "]";
        default:
            if (valuedLocals_ > 0 && pick(2) == 0)
                return "w" + std::to_string(pick(valuedLocals_));
            return "v" + std::to_string(pick(kValuedInputs));
        }
    }

    /// Division-free int expression (no runtime traps by construction).
    std::string dataExpr(int var, int depth = 1)
    {
        if (depth == 0) return dataTerm(var);
        static const char* ops[] = {"+", "-", "*", "&", "|", "^"};
        switch (pick(3)) {
        case 0: return dataTerm(var);
        default:
            return "(" + dataExpr(var, depth - 1) + " " + ops[pick(6)] +
                   " " + dataExpr(var, depth - 1) + ")";
        }
    }

    std::string dataCond(int var)
    {
        static const char* cmps[] = {"<", ">", "<=", ">=", "==", "!="};
        return "(" + dataExpr(var) + " " + cmps[pick(6)] + " " +
               dataExpr(var) + ")";
    }

    /// A C statement over the module variables (atomic data action).
    std::string dataStmt(std::string pad, int var)
    {
        std::string x =
            "x" + std::to_string(var >= 0 ? var : pick(kVars));
        switch (pick(6)) {
        case 0: return pad + x + " = " + dataExpr(var) + ";\n";
        case 1: return pad + x + " += " + dataExpr(var) + ";\n";
        case 2: return pad + x + "++;\n";
        case 3: return pad + arrayRef(var) + " = " + dataExpr(var) + ";\n";
        case 4: {
            // Block with a scoped local: declaration init reads the
            // zeroed slot, indexed loads use it, a trailing write
            // leaves a stale value for the NEXT entry — the shape that
            // keeps the optimizer's ZeroVar-elision honest.
            // Hoisted module scope forbids shadowing: temps are unique.
            std::string t = "t" + std::to_string(temps_++);
            return pad + "{ int " + t + " = (" + t + " + " +
                   dataExpr(var) + ") & 3; " + x + " = a0[" + t + "] + " +
                   t + "; " + t + " = " + std::to_string(pick(4)) + "; }\n";
        }
        default: return pad + x + " = (" + x + " & 7) + " +
                        std::to_string(pick(3)) + ";\n";
        }
    }

    /// A statement guaranteed to halt on every repeating path.
    std::string haltingStmt(int depth)
    {
        const std::string pad = "        ";
        if (depth == 0) {
            if (pick(4) == 0) return pad + "await ();\n";
            return pad + "await (" + sigExpr() + ");\n";
        }
        switch (pick(14)) {
        case 0: return pad + "await (" + sigExpr() + ");\n";
        case 1: return pad + "await ();\n";
        case 2:
            return haltingStmt(depth - 1) + pad + "emit (" +
                   pureEmitTarget() + ");\n";
        case 3:
            return haltingStmt(depth - 1) + pad + "emit_v (" +
                   valuedEmitTarget() + ", " + dataExpr(-1) + ");\n";
        case 4: return dataStmt(pad, -1) + haltingStmt(depth - 1);
        case 5: return haltingStmt(depth - 1) + dataStmt(pad, -1);
        case 6:
            return pad + "do {\n" + haltingStmt(depth - 1) + pad +
                   "halt ();\n" + pad + "} abort (" + sigExpr() + ");\n";
        case 7:
            return pad + "do {\n" + haltingStmt(depth - 1) + pad +
                   "halt ();\n" + pad + "} weak_abort (" + sigExpr() +
                   ");\n";
        case 8:
            return pad + "do {\n" + haltingStmt(depth - 1) + pad +
                   "halt ();\n" + pad + "} abort (" + sigExpr() +
                   ") handle {\n" + dataStmt(pad, -1) + pad + "emit (" +
                   pureEmitTarget() + ");\n" + pad + "}\n";
        case 9:
            return pad + "do {\n" + haltingStmt(depth - 1) + pad +
                   "} suspend (" + sigExpr() + ");\n";
        case 10:
            return pad + "present (" + sigExpr() + ") {\n" +
                   haltingStmt(depth - 1) + pad + "} else {\n" +
                   haltingStmt(depth - 1) + pad + "}\n";
        case 11:
            return pad + "if " + dataCond(-1) + " {\n" +
                   haltingStmt(depth - 1) + pad + "} else {\n" +
                   haltingStmt(depth - 1) + pad + "}\n";
        case 12: {
            // Emitter-before-tester by construction: the first branch
            // may emit a fresh local, the second may test it.
            std::string fresh = "l" + std::to_string(locals_++);
            std::string a = pad + "    { await (" + sigExpr() +
                            "); emit (" + fresh + "); }\n";
            std::string b = pad + "    { do {\n" + haltingStmt(depth - 1) +
                            pad + "    halt ();\n" + pad + "    } abort (" +
                            fresh + "); }\n";
            return pad + "par {\n" + a + b + pad + "}\n";
        }
        default: {
            // Kernel trap/exit: an inner reactive while exited by break.
            std::string guard = pick(2) == 0
                                    ? "present (" + sigExpr() + ")"
                                    : "if " + dataCond(-1);
            return pad + "while (1) {\n" + haltingStmt(depth - 1) + pad +
                   "    " + guard + " {\n" + pad + "        break;\n" +
                   pad + "    }\n" + pad + "}\n";
        }
        }
    }

    std::mt19937 rng_;
    int depth_;
    int locals_ = 0;
    int valuedLocals_ = 0;
    int temps_ = 0;
};

/// Drives one engine with a seeded random stimulus and returns a trace
/// covering pure-output presence, valued-output values, termination and
/// auto-resume per instant — comparable across engine kinds and
/// optimization levels. A runtime trap is recorded as "TRAP" (without
/// the message text: chunk deduplication legitimately merges source
/// locations) and ends the trace.
inline std::string runTrace(rt::ReactiveEngine& eng, unsigned stimulusSeed,
                            int instants)
{
    const ModuleSema& sema = eng.moduleSema();
    std::mt19937 rng(stimulusSeed);
    std::ostringstream trace;
    try {
        eng.react(); // boot
        for (int t = 0; t < instants; ++t) {
            for (const SignalInfo& s : sema.signals) {
                if (s.dir != SignalDir::Input) continue;
                if (s.pure) {
                    if (rng() & 1u) eng.setInput(s.index);
                } else if ((rng() & 3u) == 0) {
                    eng.setInputScalar(
                        s.index, static_cast<std::int64_t>(rng() % 7));
                }
            }
            eng.react();
            for (const SignalInfo& s : sema.signals) {
                if (s.dir != SignalDir::Output) continue;
                bool present = eng.outputPresent(s.index);
                trace << (present ? '1' : '0');
                if (!s.pure && present)
                    trace << '=' << eng.outputValue(s.index).toInt();
            }
            trace << (eng.terminated() ? 'T' : '.')
                  << (eng.needsAutoResume() ? 'a' : ' ');
        }
    } catch (const EclError&) {
        trace << "TRAP";
    }
    return trace.str();
}

} // namespace ecl::test
