// Shared workload generators for the benchmark suite.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"

namespace ecl::bench {

/// The paper's testbench: a byte stream of `packets` packets. Every fifth
/// packet carries a corrupted CRC and every seventh a foreign address, so
/// both rejection paths stay exercised.
inline std::vector<std::uint8_t> stackByteStream(int packets)
{
    std::vector<std::uint8_t> stream;
    stream.reserve(static_cast<std::size_t>(packets) *
                   static_cast<std::size_t>(paper::kPktSize));
    for (int p = 0; p < packets; ++p) {
        std::uint8_t addr =
            (p % 7 == 6) ? 0x21 : static_cast<std::uint8_t>(paper::kAddrByte);
        std::vector<std::uint8_t> pkt(
            static_cast<std::size_t>(paper::kPktSize), 0);
        for (int i = 0; i < paper::kHdrSize; ++i)
            pkt[static_cast<std::size_t>(i)] = addr;
        for (int i = 0; i < 20; ++i)
            pkt[static_cast<std::size_t>(paper::kHdrSize + i)] =
                static_cast<std::uint8_t>((p * 13 + i * 3) & 0xff);
        if (p % 5 == 4) pkt[40] = 0x77; // break the CRC
        stream.insert(stream.end(), pkt.begin(), pkt.end());
    }
    return stream;
}

/// Event trace for the audio buffer: `messages` record/playback sessions.
/// Each event is one of: 's' sample, 'p' play, 'x' stop, 't' tick.
inline std::vector<char> bufferEventTrace(int messages)
{
    std::vector<char> trace;
    for (int m = 0; m < messages; ++m) {
        trace.push_back('p');
        for (int f = 0; f < 3; ++f) { // three frames of four samples
            for (int sMul = 0; sMul < 4; ++sMul) {
                trace.push_back('s');
                if ((m + sMul) % 3 == 0) trace.push_back('t');
            }
        }
        trace.push_back('x');
        trace.push_back('t');
    }
    return trace;
}

} // namespace ecl::bench
