// Shared workload generators and reporting helpers for the benchmark
// suite.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"

namespace ecl::bench {

// ---------------------------------------------------------------------------
// Machine-readable results: BENCH_<name>.json
//
// CI runs the benches as smoke steps (no thresholds) and archives the JSON
// so the ns/reaction trajectory is comparable across commits. Keep the
// format flat and stable: numbers and strings only, nested objects for
// per-mode breakdowns. Benches that sweep scale set the standard
// `instances` and `threads` fields (top-level for the headline
// configuration, per-mode inside each breakdown object — see setScale), so
// BENCH_*.json tracks scaling, not just single-engine latency.
// ---------------------------------------------------------------------------

/// A minimal JSON value: number, string, or object with ordered keys.
class JsonValue {
public:
    static JsonValue num(double v)
    {
        JsonValue j;
        j.kind_ = Kind::Num;
        j.num_ = v;
        return j;
    }
    static JsonValue str(std::string v)
    {
        JsonValue j;
        j.kind_ = Kind::Str;
        j.str_ = std::move(v);
        return j;
    }
    static JsonValue obj()
    {
        JsonValue j;
        j.kind_ = Kind::Obj;
        return j;
    }

    JsonValue& set(const std::string& key, JsonValue v)
    {
        fields_.emplace_back(key, std::move(v));
        return *this;
    }
    JsonValue& set(const std::string& key, double v)
    {
        return set(key, num(v));
    }
    JsonValue& set(const std::string& key, const std::string& v)
    {
        return set(key, str(v));
    }

    void write(std::ostream& os, int indent = 0) const
    {
        switch (kind_) {
        case Kind::Num: {
            std::ostringstream tmp;
            tmp.precision(6);
            tmp << std::fixed << num_;
            std::string s = tmp.str();
            // Trim trailing zeros but keep at least one decimal digit.
            while (s.size() > 1 && s.back() == '0' &&
                   s[s.size() - 2] != '.')
                s.pop_back();
            os << s;
            return;
        }
        case Kind::Str:
            os << '"';
            for (char c : str_) {
                if (c == '"' || c == '\\') os << '\\';
                os << c;
            }
            os << '"';
            return;
        case Kind::Obj: {
            os << "{\n";
            std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
            for (std::size_t i = 0; i < fields_.size(); ++i) {
                os << pad << '"' << fields_[i].first << "\": ";
                fields_[i].second.write(os, indent + 2);
                if (i + 1 < fields_.size()) os << ',';
                os << '\n';
            }
            os << std::string(static_cast<std::size_t>(indent), ' ') << '}';
            return;
        }
        }
    }

private:
    enum class Kind { Num, Str, Obj };
    Kind kind_ = Kind::Obj;
    double num_ = 0;
    std::string str_;
    std::vector<std::pair<std::string, JsonValue>> fields_;
};

/// Current version of the flat bench-JSON schema. Bump on any field
/// rename/removal; bench_diff refuses to compare across versions.
inline constexpr int kBenchSchemaVersion = 1;

/// Sets the standard identification header every BENCH_*.json starts
/// with: schema version, bench/workload names, opt level, and the
/// producing commit. The sha comes from the ECL_GIT_SHA env var when set
/// (CI passes the exact run commit), else the configure-time
/// ECL_GIT_SHA_FALLBACK CMake bakes in, else "unknown" — bench_diff
/// ignores it when comparing. Call FIRST so the header leads the file.
inline JsonValue& setStandardHeader(JsonValue& root, const std::string& bench,
                                    const std::string& workload,
                                    int optLevel)
{
    root.set("schema_version", static_cast<double>(kBenchSchemaVersion));
    root.set("bench", bench);
    root.set("workload", workload);
    const char* sha = std::getenv("ECL_GIT_SHA");
#ifdef ECL_GIT_SHA_FALLBACK
    root.set("git_sha", sha && *sha ? sha : ECL_GIT_SHA_FALLBACK);
#else
    root.set("git_sha", sha && *sha ? sha : "unknown");
#endif
    root.set("opt_level", static_cast<double>(optLevel));
    return root;
}

/// Sets the standard scaling fields on a bench JSON object (schema above).
inline JsonValue& setScale(JsonValue& obj, int instances, int threads)
{
    obj.set("instances", static_cast<double>(instances));
    obj.set("threads", static_cast<double>(threads));
    return obj;
}

/// Writes `BENCH_<name>.json` into the working directory and reports the
/// path on stdout.
inline void writeBenchJson(const std::string& name, const JsonValue& root)
{
    std::string path = "BENCH_" + name + ".json";
    std::ofstream out(path);
    root.write(out);
    out << "\n";
    out.flush();
    if (out)
        std::printf("wrote %s\n", path.c_str());
    else
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
}

/// The paper's testbench: a byte stream of `packets` packets. Every fifth
/// packet carries a corrupted CRC and every seventh a foreign address, so
/// both rejection paths stay exercised.
inline std::vector<std::uint8_t> stackByteStream(int packets)
{
    std::vector<std::uint8_t> stream;
    stream.reserve(static_cast<std::size_t>(packets) *
                   static_cast<std::size_t>(paper::kPktSize));
    for (int p = 0; p < packets; ++p) {
        std::uint8_t addr =
            (p % 7 == 6) ? 0x21 : static_cast<std::uint8_t>(paper::kAddrByte);
        std::vector<std::uint8_t> pkt(
            static_cast<std::size_t>(paper::kPktSize), 0);
        for (int i = 0; i < paper::kHdrSize; ++i)
            pkt[static_cast<std::size_t>(i)] = addr;
        for (int i = 0; i < 20; ++i)
            pkt[static_cast<std::size_t>(paper::kHdrSize + i)] =
                static_cast<std::uint8_t>((p * 13 + i * 3) & 0xff);
        if (p % 5 == 4) pkt[40] = 0x77; // break the CRC
        stream.insert(stream.end(), pkt.begin(), pkt.end());
    }
    return stream;
}

/// Event trace for the audio buffer: `messages` record/playback sessions.
/// Each event is one of: 's' sample, 'p' play, 'x' stop, 't' tick.
inline std::vector<char> bufferEventTrace(int messages)
{
    std::vector<char> trace;
    for (int m = 0; m < messages; ++m) {
        trace.push_back('p');
        for (int f = 0; f < 3; ++f) { // three frames of four samples
            for (int sMul = 0; sMul < 4; ++sMul) {
                trace.push_back('s');
                if ((m + sMul) % 3 == 0) trace.push_back('t');
            }
        }
        trace.push_back('x');
        trace.push_back('t');
    }
    return trace;
}

} // namespace ecl::bench
