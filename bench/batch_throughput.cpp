// Batch multi-instance throughput: N concurrent protocol-stack sessions.
//
// Compares three ways of serving N instances of the compiled toplevel:
//  * sync_loop  — N independent SyncEngines stepped in a loop (the
//                 pre-batch architecture: one engine + VM per session);
//  * batch_tT   — one BatchEngine over shared flat tables, SoA arenas and
//                 T worker threads, for each requested thread count;
//  * batch_native_tT — the same batch engine with every reaction running
//                 the AOT-compiled ecl_native_react (EngineKind::Native);
//                 recorded only when the native backend really loaded, so
//                 the baseline gate catches silent VM fallbacks.
// Every instance receives one byte per instant (phase-shifted through the
// standard corrupted-packet stream), so the dense section reacts all N
// instances per step in every mode — the speedup isolates the shared-table
// SoA execution and the sharded workers. A sparse section then drives only
// ~1% of instances per step: the dirty-list scheduler reacts just those,
// while the naive engine loop must still step everyone.
//
// Emits BENCH_batch_throughput.json with the standard `instances` and
// `threads` scaling fields (CI smoke step at 1k instances, no thresholds).
// The sparse modes additionally report ns_per_dispatched_reaction and
// ns_per_instance_instant: dispatched-reaction counts differ between the
// dirty-list batch and the naive loop, so only the instance-instant
// normalization compares them on equal footing.
//
// Usage: bench_batch_throughput [--instances N] [--packets N] [--threads T]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

using namespace ecl;

namespace {

struct RunStats {
    double seconds = 0;
    std::uint64_t reactions = 0;
    std::uint64_t matches = 0; ///< addr_match count (workload checksum).

    [[nodiscard]] double reactionsPerSec() const
    {
        return seconds > 0 ? static_cast<double>(reactions) / seconds : 0;
    }
    [[nodiscard]] double nsPerReaction() const
    {
        return reactions ? seconds * 1e9 / static_cast<double>(reactions)
                         : 0;
    }
};

struct Workload {
    std::vector<std::uint8_t> stream;
    int steps = 0;       ///< Byte instants per instance.
    int drainSteps = 10; ///< Trailing empty instants (delta resumes).

    std::uint8_t byteFor(std::size_t inst, int t) const
    {
        return stream[(static_cast<std::size_t>(t) + 7 * inst) %
                      stream.size()];
    }
};

RunStats runSyncLoop(const CompiledModule& mod, const Workload& w,
                     std::size_t instances, int inByteIdx, int matchIdx)
{
    std::vector<std::unique_ptr<rt::ReactiveEngine>> engines;
    engines.reserve(instances);
    for (std::size_t i = 0; i < instances; ++i)
        engines.push_back(mod.makeEngine(EngineKind::Flat));

    RunStats s;
    auto t0 = std::chrono::steady_clock::now();
    for (auto& e : engines) {
        e->react(); // boot
        ++s.reactions;
    }
    for (int t = 0; t < w.steps + w.drainSteps; ++t) {
        for (std::size_t i = 0; i < instances; ++i) {
            if (t < w.steps)
                engines[i]->setInputScalar(inByteIdx, w.byteFor(i, t));
            rt::ReactionResult r = engines[i]->react();
            ++s.reactions;
            for (int sig : r.emittedOutputs)
                if (sig == matchIdx) ++s.matches;
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    return s;
}

RunStats runBatch(const CompiledModule& mod, const Workload& w,
                  std::size_t instances, int threads, int inByteIdx,
                  int matchIdx, EngineKind kind = EngineKind::Flat,
                  const char** backend = nullptr)
{
    auto batch = mod.makeBatchEngine(instances, {.threads = threads}, kind);
    if (backend) *backend = batch->backendName();
    RunStats s;
    auto t0 = std::chrono::steady_clock::now();
    s.reactions += batch->step(); // boot (all instances start dirty)
    for (int t = 0; t < w.steps; ++t) {
        for (std::size_t i = 0; i < instances; ++i)
            batch->setInputScalar(i, inByteIdx, w.byteFor(i, t));
        s.reactions += batch->step();
        for (const rt::BatchEngine::StepEvent& ev : batch->lastStepEvents())
            if (ev.signal == matchIdx) ++s.matches;
    }
    // Input-free drain: one worker-pool epoch for the whole auto-resume
    // tail instead of drainSteps separate wakeups.
    s.reactions += batch->stepDrain(w.drainSteps);
    for (const rt::BatchEngine::StepEvent& ev : batch->lastStepEvents())
        if (ev.signal == matchIdx) ++s.matches;
    auto t1 = std::chrono::steady_clock::now();
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    return s;
}

/// Sparse traffic: only every `period`-th instance gets a byte per step.
/// The naive engine loop still reacts everyone; the batch reacts only the
/// driven instances (plus auto-resumes).
RunStats runSyncLoopSparse(const CompiledModule& mod, const Workload& w,
                           std::size_t instances, std::size_t period,
                           int inByteIdx, int matchIdx)
{
    std::vector<std::unique_ptr<rt::ReactiveEngine>> engines;
    engines.reserve(instances);
    for (std::size_t i = 0; i < instances; ++i)
        engines.push_back(mod.makeEngine(EngineKind::Flat));
    RunStats s;
    auto t0 = std::chrono::steady_clock::now();
    for (auto& e : engines) {
        e->react();
        ++s.reactions;
    }
    for (int t = 0; t < w.steps; ++t) {
        for (std::size_t i = 0; i < instances; ++i) {
            if (i % period == static_cast<std::size_t>(t) % period)
                engines[i]->setInputScalar(inByteIdx, w.byteFor(i, t));
            rt::ReactionResult r = engines[i]->react();
            ++s.reactions;
            for (int sig : r.emittedOutputs)
                if (sig == matchIdx) ++s.matches;
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    return s;
}

RunStats runBatchSparse(const CompiledModule& mod, const Workload& w,
                        std::size_t instances, std::size_t period,
                        int threads, int inByteIdx, int matchIdx,
                        EngineKind kind = EngineKind::Flat)
{
    auto batch = mod.makeBatchEngine(instances, {.threads = threads}, kind);
    RunStats s;
    auto t0 = std::chrono::steady_clock::now();
    s.reactions += batch->step(); // boot
    for (int t = 0; t < w.steps; ++t) {
        // Event-driven staging: touch only the driven instances (the
        // point of the dirty list); same set as the naive loop's
        // i % period == t % period scan.
        for (std::size_t i = static_cast<std::size_t>(t) % period;
             i < instances; i += period)
            batch->setInputScalar(i, inByteIdx, w.byteFor(i, t));
        s.reactions += batch->step();
        for (const rt::BatchEngine::StepEvent& ev : batch->lastStepEvents())
            if (ev.signal == matchIdx) ++s.matches;
    }
    auto t1 = std::chrono::steady_clock::now();
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    return s;
}

bench::JsonValue modeJson(const RunStats& s, int instances, int threads)
{
    bench::JsonValue m = bench::JsonValue::obj();
    m.set("reactions_per_sec", s.reactionsPerSec())
        .set("ns_per_reaction", s.nsPerReaction())
        .set("reactions", static_cast<double>(s.reactions))
        .set("addr_matches", static_cast<double>(s.matches))
        .set("seconds", s.seconds);
    bench::setScale(m, instances, threads);
    return m;
}

/// Sparse modes dispatch different reaction counts (the dirty list skips
/// idle instances; the naive loop reacts everyone), so ns_per_reaction is
/// not comparable across them. Report both views explicitly: cost per
/// reaction actually dispatched, and cost per instance-instant of wall
/// coverage (instances x driven instants — identical denominator for both
/// modes, so it is the apples-to-apples sparse metric).
bench::JsonValue sparseModeJson(const RunStats& s, int instances,
                                int threads, std::uint64_t instanceInstants)
{
    bench::JsonValue m = modeJson(s, instances, threads);
    m.set("ns_per_dispatched_reaction", s.nsPerReaction())
        .set("instance_instants", static_cast<double>(instanceInstants))
        .set("ns_per_instance_instant",
             instanceInstants ? s.seconds * 1e9 /
                                    static_cast<double>(instanceInstants)
                              : 0);
    return m;
}

void printRow(const char* name, const RunStats& s)
{
    std::printf("  %-16s %14.0f r/s %10.1f ns/r %12llu reactions %8llu "
                "matches\n",
                name, s.reactionsPerSec(), s.nsPerReaction(),
                static_cast<unsigned long long>(s.reactions),
                static_cast<unsigned long long>(s.matches));
}

} // namespace

int main(int argc, char** argv)
{
    int instances = 10000;
    int packets = 3;
    int maxThreads = std::min(
        4u, std::max(1u, std::thread::hardware_concurrency()));
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc)
            instances = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc)
            packets = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            maxThreads = std::atoi(argv[++i]);
    }
    if (instances < 1 || packets < 1 || maxThreads < 1) {
        std::fprintf(stderr,
                     "usage: %s [--instances N>=1] [--packets N>=1] "
                     "[--threads N>=1]\n",
                     argv[0]);
        return 2;
    }

    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    if (!mod->hasFlatProgram()) {
        std::fprintf(stderr,
                     "flat program unavailable for toplevel — aborting\n");
        return 1;
    }
    const auto n = static_cast<std::size_t>(instances);
    Workload w;
    w.stream = bench::stackByteStream(packets);
    w.steps = static_cast<int>(w.stream.size());
    int inByteIdx = mod->moduleSema().findSignal("in_byte")->index;
    int matchIdx = mod->moduleSema().findSignal("addr_match")->index;

    std::vector<int> threadCounts;
    for (int t = 1; t <= maxThreads; t *= 2) threadCounts.push_back(t);
    if (threadCounts.back() != maxThreads)
        threadCounts.push_back(maxThreads);

    std::printf("batch throughput — %d protocol-stack sessions, %d packets "
                "each (%d byte instants)\n",
                instances, packets, w.steps);

    RunStats sync = runSyncLoop(*mod, w, n, inByteIdx, matchIdx);
    printRow("sync_loop", sync);
    std::vector<std::pair<int, RunStats>> batchRuns;
    for (int t : threadCounts) {
        RunStats b = runBatch(*mod, w, n, t, inByteIdx, matchIdx);
        char name[32];
        std::snprintf(name, sizeof name, "batch_t%d", t);
        printRow(name, b);
        if (b.matches != sync.matches) {
            std::fprintf(stderr,
                         "checksum mismatch: batch_t%d %llu vs sync %llu\n",
                         t, static_cast<unsigned long long>(b.matches),
                         static_cast<unsigned long long>(sync.matches));
            return 1;
        }
        batchRuns.emplace_back(t, b);
    }
    const RunStats& best = batchRuns.back().second;
    double speedup = best.seconds > 0 ? sync.seconds / best.seconds : 0;
    std::printf("  speedup batch_t%d vs sync_loop (wall clock): %.2fx\n",
                batchRuns.back().first, speedup);

    // Thread-scaling gate: dense reactions/sec at 4 workers vs 1 (the
    // regression this bench exists to police). Recorded only when both
    // thread counts ran, which the CI pin (--threads 4) guarantees.
    double scalingT4 = 0;
    {
        const RunStats* t1 = nullptr;
        const RunStats* t4 = nullptr;
        for (const auto& [t, b] : batchRuns) {
            if (t == 1) t1 = &b;
            if (t == 4) t4 = &b;
        }
        if (t1 && t4 && t1->reactionsPerSec() > 0)
            scalingT4 = t4->reactionsPerSec() / t1->reactionsPerSec();
        if (scalingT4 > 0)
            std::printf("  speedup batch_t4 vs batch_t1: %.2fx\n",
                        scalingT4);
    }

    // Native batch: the AOT reaction function on the batch arenas. A
    // silent VM fallback must not record native-looking numbers — the
    // baseline carries these metrics, so bench_diff then fails on the
    // missing metric (same contract as speedup_aot_vs_o2_vm).
    std::vector<std::pair<int, RunStats>> nativeRuns;
    const char* nativeBackend = nullptr;
    {
        RunStats probe = runBatch(*mod, w, n, 1, inByteIdx, matchIdx,
                                  EngineKind::Native, &nativeBackend);
        if (std::strcmp(nativeBackend, "native") == 0) {
            printRow("batch_native_t1", probe);
            if (probe.matches != sync.matches) {
                std::fprintf(stderr, "native checksum mismatch\n");
                return 1;
            }
            nativeRuns.emplace_back(1, probe);
            if (maxThreads > 1) {
                RunStats bn = runBatch(*mod, w, n, maxThreads, inByteIdx,
                                       matchIdx, EngineKind::Native);
                char name[32];
                std::snprintf(name, sizeof name, "batch_native_t%d",
                              maxThreads);
                printRow(name, bn);
                if (bn.matches != sync.matches) {
                    std::fprintf(stderr, "native checksum mismatch\n");
                    return 1;
                }
                nativeRuns.emplace_back(maxThreads, bn);
            }
        } else {
            std::fprintf(stderr,
                         "note: native backend unavailable (VM fallback) — "
                         "batch_native_* modes not recorded\n");
        }
    }
    double nativeVsVm = 0;
    if (!nativeRuns.empty() && best.reactionsPerSec() > 0)
        nativeVsVm =
            nativeRuns.back().second.reactionsPerSec() /
            best.reactionsPerSec();

    // Sparse section: ~1% of instances driven per step.
    const std::size_t period = 100;
    std::printf("sparse traffic — 1 instance in %zu driven per instant\n",
                period);
    RunStats syncSparse =
        runSyncLoopSparse(*mod, w, n, period, inByteIdx, matchIdx);
    RunStats batchSparse = runBatchSparse(*mod, w, n, period, maxThreads,
                                          inByteIdx, matchIdx);
    printRow("sync_loop", syncSparse);
    printRow("batch", batchSparse);
    // Common denominator for the two sparse modes: every instance covers
    // every driven instant regardless of how many reactions that took.
    const std::uint64_t instanceInstants =
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(w.steps);
    auto nsPerInstInstant = [&](const RunStats& s) {
        return instanceInstants ? s.seconds * 1e9 /
                                      static_cast<double>(instanceInstants)
                                : 0;
    };
    std::printf("  sparse ns/instance-instant: sync_loop %.1f, batch %.1f "
                "(%llu instance-instants)\n",
                nsPerInstInstant(syncSparse), nsPerInstInstant(batchSparse),
                static_cast<unsigned long long>(instanceInstants));
    double sparseSpeedup = batchSparse.seconds > 0
                               ? syncSparse.seconds / batchSparse.seconds
                               : 0;
    std::printf("  sparse speedup (dirty list + threads): %.2fx\n",
                sparseSpeedup);
    if (batchSparse.matches != syncSparse.matches) {
        std::fprintf(stderr, "sparse checksum mismatch: %llu vs %llu\n",
                     static_cast<unsigned long long>(batchSparse.matches),
                     static_cast<unsigned long long>(syncSparse.matches));
        return 1;
    }
    // Dispatch efficiency: the dirty list only pays off if the cost per
    // reaction it actually dispatches stays close to the sync loop's
    // per-reaction cost (>= 0.5 here == the "within 2x" budget).
    double sparseDispatch = 0;
    if (batchSparse.nsPerReaction() > 0)
        sparseDispatch =
            syncSparse.nsPerReaction() / batchSparse.nsPerReaction();
    std::printf("  sparse dispatch efficiency vs sync loop: %.2fx\n",
                sparseDispatch);
    RunStats batchSparseNative;
    bool haveSparseNative = false;
    double sparseDispatchNative = 0;
    if (!nativeRuns.empty()) {
        batchSparseNative =
            runBatchSparse(*mod, w, n, period, maxThreads, inByteIdx,
                           matchIdx, EngineKind::Native);
        printRow("batch_sparse_nat", batchSparseNative);
        if (batchSparseNative.matches != syncSparse.matches) {
            std::fprintf(stderr, "sparse native checksum mismatch\n");
            return 1;
        }
        haveSparseNative = true;
        if (batchSparseNative.nsPerReaction() > 0)
            sparseDispatchNative = syncSparse.nsPerReaction() /
                                   batchSparseNative.nsPerReaction();
        std::printf("  sparse native dispatch efficiency vs sync loop: "
                    "%.2fx\n",
                    sparseDispatchNative);
    }

    bench::JsonValue modes = bench::JsonValue::obj();
    modes.set("sync_loop", modeJson(sync, instances, 1));
    for (const auto& [t, b] : batchRuns) {
        char name[32];
        std::snprintf(name, sizeof name, "batch_t%d", t);
        modes.set(name, modeJson(b, instances, t));
    }
    for (const auto& [t, b] : nativeRuns) {
        char name[32];
        std::snprintf(name, sizeof name, "batch_native_t%d", t);
        modes.set(name, modeJson(b, instances, t));
    }
    modes.set("sync_loop_sparse",
              sparseModeJson(syncSparse, instances, 1, instanceInstants));
    modes.set("batch_sparse", sparseModeJson(batchSparse, instances,
                                             maxThreads, instanceInstants));
    if (haveSparseNative)
        modes.set("batch_sparse_native",
                  sparseModeJson(batchSparseNative, instances, maxThreads,
                                 instanceInstants));

    bench::JsonValue root = bench::JsonValue::obj();
    bench::setStandardHeader(root, "batch_throughput",
                             "protocol_stack_toplevel", 3);
    root.set("packets", static_cast<double>(packets));
    bench::setScale(root, instances, maxThreads);
    root.set("modes", std::move(modes))
        .set("speedup_batch_vs_sync_loop", speedup)
        .set("speedup_sparse_batch_vs_sync_loop", sparseSpeedup)
        .set("speedup_sparse_dispatch_vs_sync_loop", sparseDispatch);
    if (scalingT4 > 0) root.set("speedup_batch_t4_vs_t1", scalingT4);
    if (nativeVsVm > 0)
        root.set("speedup_batch_native_vs_vm", nativeVsVm);
    if (sparseDispatchNative > 0)
        root.set("speedup_sparse_native_dispatch_vs_sync_loop",
                 sparseDispatchNative);
    bench::writeBenchJson("batch_throughput", root);
    return 0;
}
