// Ablation A3 — synchronous collapse: code size vs speed.
//
// Section 3 ("Compilation"): collapsing a top-level par into one EFSM
// "will yield a more efficient time-performant implementation at the
// expense of larger code size". This bench sweeps k = 1..4 independent
// 5-state controllers composed in one par and reports the collapsed
// automaton's state count and modeled code size against the sum of the
// separately compiled controllers — the product-vs-sum growth underlying
// Table 1's Buffer row.
#include <cstdio>
#include <string>

#include "src/cost/cost.h"
#include "src/core/compiler.h"

using namespace ecl;

namespace {

std::string controllerSource(int k)
{
    std::string src;
    for (int i = 0; i < k; ++i) {
        std::string n = std::to_string(i);
        src += "module ctl" + n + " (input pure reset, input pure t" + n +
               ", output pure done" + n + ")\n{\n"
               "    while (1) {\n        do {\n"
               "            await (t" + n + ");\n"
               "            await (t" + n + ");\n"
               "            await (t" + n + ");\n"
               "            await (t" + n + ");\n"
               "            emit (done" + n + ");\n"
               "        } abort (reset);\n    }\n}\n\n";
    }
    src += "module top (input pure reset";
    for (int i = 0; i < k; ++i)
        src += ", input pure t" + std::to_string(i);
    for (int i = 0; i < k; ++i)
        src += ", output pure done" + std::to_string(i);
    src += ")\n{\n    par {\n";
    for (int i = 0; i < k; ++i) {
        std::string n = std::to_string(i);
        src += "        ctl" + n + " (reset, t" + n + ", done" + n + ");\n";
    }
    src += "    }\n}\n";
    return src;
}

} // namespace

int main()
{
    std::printf("Ablation A3: state/code growth of synchronous collapse\n\n");
    std::printf("%2s %12s %12s %14s %14s %10s\n", "k", "syncStates",
                "sumStates", "syncCode [B]", "sumCode [B]", "ratio");

    cost::CostModel cm;
    bool monotone = true;
    double prevRatio = 0.0;
    for (int k = 1; k <= 4; ++k) {
        Compiler compiler(controllerSource(k));
        auto top = compiler.compile("top");
        std::size_t syncStates = top->machine().stats().states;
        std::size_t syncCode = cm.moduleSize(top->machine()).codeBytes;

        std::size_t sumStates = 0;
        std::size_t sumCode = 0;
        for (int i = 0; i < k; ++i) {
            auto ctl = compiler.compile("ctl" + std::to_string(i));
            sumStates += ctl->machine().stats().states;
            sumCode += cm.moduleSize(ctl->machine()).codeBytes;
        }
        double ratio =
            static_cast<double>(syncCode) / static_cast<double>(sumCode);
        std::printf("%2d %12zu %12zu %14zu %14zu %9.2fx\n", k, syncStates,
                    sumStates, syncCode, sumCode, ratio);
        if (k > 1 && ratio <= prevRatio) monotone = false;
        prevRatio = ratio;
    }
    std::printf("\n  [%s] collapsed/sum code ratio grows with k "
                "(product-vs-sum state growth)\n",
                monotone ? "ok" : "MISMATCH");
    return 0;
}
