// Ablation A4 — compiler scalability: phase timing on growing programs.
//
// The paper reports a prototype compiler "under test on industrial
// examples"; this bench characterizes our reimplementation's phases
// (lex+parse, program sema, elaborate+module sema, lower/partition, EFSM
// build) on synthetic programs with a growing number of modules.
#include <benchmark/benchmark.h>

#include <string>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/frontend/parser.h"
#include "src/sema/elaborate.h"

using namespace ecl;

namespace {

std::string syntheticProgram(int modules)
{
    std::string src = "typedef unsigned char byte;\n";
    for (int i = 0; i < modules; ++i) {
        std::string n = std::to_string(i);
        src += "module worker" + n +
               " (input pure go, input byte v, output byte r)\n{\n"
               "    int acc;\n    int j;\n"
               "    while (1) {\n"
               "        await (go);\n"
               "        for (j = 0, acc = 0; j < 16; j++) {\n"
               "            acc = acc + v * j;\n"
               "        }\n"
               "        emit_v (r, acc);\n"
               "    }\n}\n\n";
    }
    src += "module main_top (input pure go, input byte v";
    for (int i = 0; i < modules; ++i)
        src += ", output byte r" + std::to_string(i);
    src += ")\n{\n    par {\n";
    for (int i = 0; i < modules; ++i) {
        std::string n = std::to_string(i);
        src += "        worker" + n + " (go, v, r" + n + ");\n";
    }
    src += "    }\n}\n";
    return src;
}

void BM_LexParse(benchmark::State& state)
{
    std::string src = syntheticProgram(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        Diagnostics diags;
        benchmark::DoNotOptimize(parseEcl(src, diags));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * src.size()));
}
BENCHMARK(BM_LexParse)->Arg(2)->Arg(8)->Arg(32);

void BM_ProgramSema(benchmark::State& state)
{
    std::string src = syntheticProgram(static_cast<int>(state.range(0)));
    Diagnostics diags;
    ast::Program prog = parseEcl(src, diags);
    for (auto _ : state) {
        Diagnostics d2;
        benchmark::DoNotOptimize(analyzeProgramDecls(prog, d2));
    }
}
BENCHMARK(BM_ProgramSema)->Arg(2)->Arg(8)->Arg(32);

void BM_FullCompileSync(benchmark::State& state)
{
    std::string src = syntheticProgram(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        Compiler compiler(src);
        auto mod = compiler.compile("main_top");
        benchmark::DoNotOptimize(mod->machine().stats().states);
    }
}
BENCHMARK(BM_FullCompileSync)->Arg(2)->Arg(4)->Arg(8);

void BM_CompilePaperExamples(benchmark::State& state)
{
    for (auto _ : state) {
        Compiler stack(paper::protocolStackSource());
        benchmark::DoNotOptimize(stack.compile("toplevel"));
        Compiler buffer(paper::audioBufferSource());
        benchmark::DoNotOptimize(buffer.compile("buffer_top"));
    }
}
BENCHMARK(BM_CompilePaperExamples);

} // namespace

BENCHMARK_MAIN();
