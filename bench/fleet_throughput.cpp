// Sharded-fleet serving throughput: sessions/sec through the full
// src/serve surface at 10k / 100k / 1M sessions.
//
// Three modes per session count, all running the identical byte
// workload (every session streams `--steps` phase-shifted bytes of the
// standard packet stream, then drains its delta tail):
//  * single_batch_t1 — one BatchEngine, direct setInputScalar + step:
//    the PR-8 serving architecture and the comparison the fleet must
//    beat at scale;
//  * fleet_s1_t1     — a ShardedFleet with one shard and one thread:
//    same engine underneath, so the delta IS the serving-layer tax
//    (session table lookups, ring hop, admission bookkeeping);
//  * fleet_sS_tT     — the sharded fleet at --shards/--threads: the
//    speedup_fleet_vs_single_batch headline and the
//    speedup_fleet_shards shard-scaling gate come from here.
// Submission is single-threaded and the workload fixed, so `reactions`
// and `addr_matches` are exact counters: bench_diff fails the gate when
// two runs measured different work.
//
// A separate section measures the state-mobility primitives on a warm
// 4-shard fleet: ns_per_migration (checkpoint bytes + slot reuse + table
// flip, round-robin to the next shard) and ns_per_checkpoint_restore
// (serialize to the versioned format, admit back as a new session).
//
// Emits BENCH_fleet_throughput.json (gated by bench_diff in CI at the
// pinned parameters below).
//
// Usage: bench_fleet_throughput [--steps N] [--shards S] [--threads T]
//                               [--max-sessions N] [--migrations N]
#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/fleet.h"

using namespace ecl;

namespace {

struct RunStats {
    double seconds = 0;       ///< Serve wall time (boot..drain).
    double admitSeconds = 0;  ///< Fleet modes: the admission loop.
    std::uint64_t reactions = 0;
    std::uint64_t matches = 0; ///< addr_match count (workload checksum).

    [[nodiscard]] double sessionsPerSec(std::size_t sessions) const
    {
        return seconds > 0 ? static_cast<double>(sessions) / seconds : 0;
    }
    [[nodiscard]] double reactionsPerSec() const
    {
        return seconds > 0 ? static_cast<double>(reactions) / seconds : 0;
    }
    [[nodiscard]] double nsPerReaction() const
    {
        return reactions ? seconds * 1e9 / static_cast<double>(reactions)
                         : 0;
    }
};

struct Workload {
    std::vector<std::uint8_t> stream;
    int steps = 16;
    int drainSteps = 12;

    [[nodiscard]] std::uint8_t byteFor(std::size_t inst, int t) const
    {
        return stream[(static_cast<std::size_t>(t) + 7 * inst) %
                      stream.size()];
    }
};

RunStats runSingleBatch(const CompiledModule& mod, const Workload& w,
                        std::size_t sessions, int inByte, int match,
                        EngineKind kind = EngineKind::Flat,
                        const char** backend = nullptr)
{
    auto batch = mod.makeBatchEngine(sessions, rt::BatchOptions{1}, kind);
    if (backend) *backend = batch->backendName();
    RunStats s;
    const auto t0 = std::chrono::steady_clock::now();
    s.reactions += batch->step(); // boot
    for (int t = 0; t < w.steps; ++t) {
        for (std::size_t i = 0; i < sessions; ++i)
            batch->setInputScalar(i, inByte, w.byteFor(i, t));
        s.reactions += batch->step();
        for (const rt::BatchEngine::StepEvent& ev : batch->lastStepEvents())
            if (ev.signal == match) ++s.matches;
    }
    s.reactions += batch->stepDrain(w.drainSteps);
    for (const rt::BatchEngine::StepEvent& ev : batch->lastStepEvents())
        if (ev.signal == match) ++s.matches;
    const auto t1 = std::chrono::steady_clock::now();
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    return s;
}

/// Fleet mode. `producers` > 1 stages each instant's events from that
/// many concurrent threads — the workload the lock-free MPSC rings
/// exist for (a single BatchEngine's input phase is single-threaded by
/// contract). Producer p owns sessions i with i % producers == p; with
/// round-robin admission and producers == shards that aligns each
/// producer with one shard's ring, which is also how a real frontend
/// would partition. Events per round are identical for any producer
/// count, so `reactions`/`addr_matches` stay exact counters.
RunStats runFleet(std::shared_ptr<const CompiledModule> mod,
                  const Workload& w, std::size_t sessions, int shards,
                  int threads, int producers, int inByte, int match,
                  EngineKind kind = EngineKind::Flat)
{
    serve::FleetOptions opts;
    opts.shards = shards;
    opts.threads = threads;
    opts.kind = kind;
    opts.queueCapacity =
        sessions / static_cast<std::size_t>(shards) + 64;
    serve::ShardedFleet fleet(std::move(mod), opts);

    RunStats s;
    const auto ta = std::chrono::steady_clock::now();
    std::vector<serve::SessionId> ids;
    ids.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i)
        ids.push_back(fleet.admit().session);
    const auto tAdmit = std::chrono::steady_clock::now();
    s.admitSeconds = std::chrono::duration<double>(tAdmit - ta).count();

    std::vector<serve::SessionEvent> events;
    auto collect = [&] {
        events.clear();
        fleet.collectLastRoundEvents(events);
        for (const serve::SessionEvent& ev : events)
            if (ev.signal == match) ++s.matches;
    };

    // Producer crew (spawned before the serve timer starts). Each round:
    // main opens the round at the first barrier, producers submit their
    // slice, the second barrier closes it, main steps the fleet.
    std::vector<std::thread> crew;
    std::barrier<> sync(producers > 1 ? producers + 1 : 2);
    std::atomic<int> instant{-1};
    std::atomic<bool> done{false};
    if (producers > 1) {
        crew.reserve(static_cast<std::size_t>(producers));
        for (int p = 0; p < producers; ++p)
            crew.emplace_back([&, p] {
                for (;;) {
                    sync.arrive_and_wait();
                    if (done.load(std::memory_order_acquire)) return;
                    const int t = instant.load(std::memory_order_relaxed);
                    for (std::size_t i = static_cast<std::size_t>(p);
                         i < sessions;
                         i += static_cast<std::size_t>(producers))
                        fleet.submitScalar(ids[i], inByte,
                                           w.byteFor(i, t));
                    sync.arrive_and_wait();
                }
            });
    }

    const auto t0 = std::chrono::steady_clock::now();
    s.reactions += fleet.step(); // boot
    for (int t = 0; t < w.steps; ++t) {
        if (producers > 1) {
            instant.store(t, std::memory_order_relaxed);
            sync.arrive_and_wait(); // open the round
            sync.arrive_and_wait(); // all slices submitted
        } else {
            for (std::size_t i = 0; i < sessions; ++i)
                fleet.submitScalar(ids[i], inByte, w.byteFor(i, t));
        }
        s.reactions += fleet.step();
        collect();
    }
    while (fleet.hasPendingTraffic()) {
        s.reactions += fleet.step();
        collect();
    }
    const auto t1 = std::chrono::steady_clock::now();
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    if (producers > 1) {
        done.store(true, std::memory_order_release);
        sync.arrive_and_wait();
        for (std::thread& th : crew) th.join();
    }
    return s;
}

bench::JsonValue modeJson(const RunStats& s, std::size_t sessions,
                          int threads)
{
    bench::JsonValue m = bench::JsonValue::obj();
    m.set("sessions_per_sec", s.sessionsPerSec(sessions))
        .set("reactions_per_sec", s.reactionsPerSec())
        .set("ns_per_reaction", s.nsPerReaction())
        .set("reactions", static_cast<double>(s.reactions))
        .set("addr_matches", static_cast<double>(s.matches))
        .set("seconds", s.seconds);
    bench::setScale(m, static_cast<int>(sessions), threads);
    return m;
}

void printRow(const char* name, const RunStats& s, std::size_t sessions)
{
    std::printf("  %-20s %12.0f sessions/s %14.0f r/s %12llu reactions "
                "%8llu matches\n",
                name, s.sessionsPerSec(sessions), s.reactionsPerSec(),
                static_cast<unsigned long long>(s.reactions),
                static_cast<unsigned long long>(s.matches));
}

} // namespace

int main(int argc, char** argv)
{
    Workload w;
    int shards = 4;
    int threads = 4;
    std::size_t maxSessions = 1000000;
    std::size_t migrations = 5000;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--steps") && i + 1 < argc)
            w.steps = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--shards") && i + 1 < argc)
            shards = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--max-sessions") && i + 1 < argc)
            maxSessions = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--migrations") && i + 1 < argc)
            migrations = std::strtoull(argv[++i], nullptr, 10);
        else {
            std::fprintf(stderr,
                         "usage: %s [--steps N] [--shards S] [--threads T] "
                         "[--max-sessions N] [--migrations N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (w.steps < 1 || shards < 1 || threads < 1 || maxSessions < 1) {
        std::fprintf(stderr, "bad parameters\n");
        return 2;
    }

    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    if (!mod->hasFlatProgram()) {
        std::fprintf(stderr,
                     "flat program unavailable for toplevel — aborting\n");
        return 1;
    }
    w.stream = bench::stackByteStream(1);
    const int inByte = mod->moduleSema().findSignal("in_byte")->index;
    const int match = mod->moduleSema().findSignal("addr_match")->index;

    std::vector<std::size_t> sizes;
    for (std::size_t n : {std::size_t{10000}, std::size_t{100000},
                          std::size_t{1000000}})
        if (n <= maxSessions) sizes.push_back(n);
    if (sizes.empty()) sizes.push_back(maxSessions);

    // Probe the AOT native backend once: when it loads, every size also
    // runs the fleet with native shard engines (the serving layer
    // composes with the per-reaction AOT win; on multicore it compounds
    // with shard parallelism). A silent VM fallback records nothing, so
    // the baseline gate catches it (same contract as batch_native_*).
    bool haveNative = false;
    {
        const char* backend = nullptr;
        Workload probe = w;
        probe.steps = 1;
        runSingleBatch(*mod, probe, 1, inByte, match, EngineKind::Native,
                       &backend);
        haveNative = std::strcmp(backend, "native") == 0;
        if (!haveNative)
            std::fprintf(stderr, "note: native backend unavailable (VM "
                                 "fallback) — *_native modes not "
                                 "recorded\n");
    }

    bench::JsonValue modes = bench::JsonValue::obj();
    double speedupFleetVsSingle = 0;       ///< At the largest size.
    double speedupShards = 0;              ///< fleet_sS_tT vs fleet_s1_t1.
    double speedupNativeFleetVsSingle = 0; ///< Native fleet vs VM single.
    for (std::size_t n : sizes) {
        std::printf("%zu sessions — %d byte instants each\n", n, w.steps);
        const RunStats single =
            runSingleBatch(*mod, w, n, inByte, match);
        printRow("single_batch_t1", single, n);
        const RunStats f1 = runFleet(mod, w, n, 1, 1, 1, inByte, match);
        printRow("fleet_s1_t1", f1, n);
        char name[48];
        std::snprintf(name, sizeof name, "fleet_s%d_t%d", shards, threads);
        const RunStats fs = runFleet(mod, w, n, shards, threads,
                                     /*producers=*/shards, inByte, match);
        printRow(name, fs, n);
        if (fs.matches != single.matches || f1.matches != single.matches) {
            std::fprintf(stderr,
                         "checksum mismatch at %zu sessions: single %llu, "
                         "fleet_s1 %llu, fleet_sN %llu\n",
                         n, static_cast<unsigned long long>(single.matches),
                         static_cast<unsigned long long>(f1.matches),
                         static_cast<unsigned long long>(fs.matches));
            return 1;
        }
        std::printf("  fleet admit: %.0f admissions/s (s1), %.0f (s%d)\n",
                    f1.admitSeconds > 0
                        ? static_cast<double>(n) / f1.admitSeconds
                        : 0,
                    fs.admitSeconds > 0
                        ? static_cast<double>(n) / fs.admitSeconds
                        : 0,
                    shards);

        char key[64];
        std::snprintf(key, sizeof key, "s%zu_single_batch_t1", n);
        modes.set(key, modeJson(single, n, 1));
        std::snprintf(key, sizeof key, "s%zu_fleet_s1_t1", n);
        modes.set(key, modeJson(f1, n, 1));
        std::snprintf(key, sizeof key, "s%zu_fleet_s%d_t%d", n, shards,
                      threads);
        modes.set(key, modeJson(fs, n, threads));

        RunStats fsNative;
        if (haveNative) {
            fsNative = runFleet(mod, w, n, shards, threads,
                                /*producers=*/shards, inByte, match,
                                EngineKind::Native);
            char nname[64];
            std::snprintf(nname, sizeof nname, "fleet_s%d_t%d_native",
                          shards, threads);
            printRow(nname, fsNative, n);
            if (fsNative.matches != single.matches) {
                std::fprintf(stderr, "native fleet checksum mismatch\n");
                return 1;
            }
            std::snprintf(key, sizeof key, "s%zu_fleet_s%d_t%d_native", n,
                          shards, threads);
            modes.set(key, modeJson(fsNative, n, threads));
        }

        if (n == sizes.back()) {
            if (single.seconds > 0)
                speedupFleetVsSingle = single.seconds / fs.seconds;
            if (f1.seconds > 0) speedupShards = f1.seconds / fs.seconds;
            if (haveNative && single.seconds > 0)
                speedupNativeFleetVsSingle =
                    single.seconds / fsNative.seconds;
        }
    }
    std::printf("largest size: fleet_s%d_t%d %.2fx vs single_batch_t1, "
                "%.2fx vs fleet_s1_t1\n",
                shards, threads, speedupFleetVsSingle, speedupShards);
    if (speedupNativeFleetVsSingle > 0)
        std::printf("largest size: fleet_s%d_t%d_native %.2fx vs "
                    "single_batch_t1\n",
                    shards, threads, speedupNativeFleetVsSingle);

    // State mobility on a warm 4-shard fleet: every session has streamed
    // a few bytes, so the moved state is a real mid-assembly snapshot.
    const std::size_t mobSessions = std::min<std::size_t>(20000, maxSessions);
    if (migrations > mobSessions) migrations = mobSessions;
    serve::FleetOptions mopts;
    mopts.shards = 4;
    mopts.threads = 1; // Timing the control plane, not the workers.
    mopts.queueCapacity = mobSessions / 4 + 64;
    serve::ShardedFleet mfleet(mod, mopts);
    std::vector<serve::SessionId> mids;
    mids.reserve(mobSessions);
    for (std::size_t i = 0; i < mobSessions; ++i)
        mids.push_back(mfleet.admit().session);
    mfleet.step();
    for (int t = 0; t < 8; ++t) {
        for (std::size_t i = 0; i < mobSessions; ++i)
            mfleet.submitScalar(mids[i], inByte, w.byteFor(i, t));
        mfleet.step();
    }
    mfleet.drainAll();

    const auto m0 = std::chrono::steady_clock::now();
    std::size_t migrated = 0;
    for (std::size_t i = 0; i < migrations; ++i) {
        const auto [sh, slot] = mfleet.locate(mids[i]);
        if (mfleet.migrate(mids[i], (sh + 1) % 4) ==
            serve::MigrateStatus::Ok)
            ++migrated;
    }
    const auto m1 = std::chrono::steady_clock::now();
    const double migSeconds =
        std::chrono::duration<double>(m1 - m0).count();
    const double nsPerMigration =
        migrated ? migSeconds * 1e9 / static_cast<double>(migrated) : 0;

    const auto c0 = std::chrono::steady_clock::now();
    std::size_t restored = 0;
    for (std::size_t i = 0; i < migrations; ++i) {
        const std::vector<std::uint8_t> ckpt =
            mfleet.checkpointSession(mids[i]);
        mfleet.endSession(mids[i]);
        const serve::RestoreResult r = mfleet.restoreSession(ckpt);
        if (r.status == serve::RestoreStatus::Ok) {
            mids[i] = r.session;
            ++restored;
        }
    }
    const auto c1 = std::chrono::steady_clock::now();
    const double ckptSeconds =
        std::chrono::duration<double>(c1 - c0).count();
    const double nsPerCkptRestore =
        restored ? ckptSeconds * 1e9 / static_cast<double>(restored) : 0;
    if (migrated != migrations || restored != migrations) {
        std::fprintf(stderr, "mobility count mismatch: %zu/%zu migrated, "
                     "%zu restored\n",
                     migrated, migrations, restored);
        return 1;
    }
    std::printf("state mobility (%zu warm sessions): %.0f ns/migration, "
                "%.0f ns/checkpoint+restore (%zu each)\n",
                mobSessions, nsPerMigration, nsPerCkptRestore, migrations);

    bench::JsonValue root = bench::JsonValue::obj();
    bench::setStandardHeader(root, "fleet_throughput",
                             "protocol_stack_toplevel", 3);
    root.set("steps", static_cast<double>(w.steps));
    bench::setScale(root, static_cast<int>(sizes.back()), threads);
    root.set("shards", static_cast<double>(shards));
    root.set("modes", std::move(modes))
        .set("speedup_fleet_vs_single_batch", speedupFleetVsSingle)
        .set("speedup_fleet_shards", speedupShards);
    if (speedupNativeFleetVsSingle > 0)
        root.set("speedup_fleet_native_vs_single_batch",
                 speedupNativeFleetVsSingle);
    root.set("migrations", static_cast<double>(migrations))
        .set("ns_per_migration", nsPerMigration)
        .set("ns_per_checkpoint_restore", nsPerCkptRestore);
    bench::writeBenchJson("fleet_throughput", root);
    return 0;
}
