// Table 1 — "Results of synchronous/asynchronous implementation trade-offs".
//
// Reproduces the paper's only results table: the protocol stack (Figures
// 1-4) and the audio buffer controller, each compiled two ways:
//   * 1 task : synchronous composition (every module inlined into a single
//              EFSM) running as one task under the kernel;
//   * 3 tasks: each module its own task under the RTOS simulator, signals
//              carried by 1-place event buffers.
// Columns match the paper: memory (code/data) split into task vs RTOS
// shares, and execution cycles split the same way. The stack runs the
// paper's 500-packet testbench; the buffer runs a 60-message trace.
//
// Absolute numbers come from our R3000-style cost model (src/cost/cost.h,
// described in docs/ARCHITECTURE.md), so
// only the qualitative shape is compared against the paper's values, which
// are printed alongside.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/cost/cost.h"
#include "src/rtos/rtos.h"

using namespace ecl;

namespace {

struct Row {
    const char* example;
    const char* partition;
    std::size_t taskCode, taskData, rtosCode, rtosData;
    std::uint64_t taskKcyc, rtosKcyc;
};

Row measureStack(bool threeTasks, int packets)
{
    Compiler compiler(paper::protocolStackSource());
    rtos::Network net;
    int assembleTask;
    if (threeTasks) {
        assembleTask = net.addTask(compiler.compile("assemble"));
        int crc = net.addTask(compiler.compile("checkcrc"));
        int hdr = net.addTask(compiler.compile("prochdr"));
        net.connect(assembleTask, "outpkt", crc, "inpkt");
        net.connect(assembleTask, "outpkt", hdr, "inpkt");
        net.connect(crc, "crc_ok", hdr, "crc_ok");
    } else {
        assembleTask = net.addTask(compiler.compile("toplevel"));
    }
    net.boot();
    for (std::uint8_t b : bench::stackByteStream(packets)) {
        net.injectScalar(assembleTask, "in_byte", b);
        net.run();
    }
    rtos::MemoryReport m = net.memory();
    return {"Stack", threeTasks ? "3 tasks" : "1 task", m.taskCode,
            m.taskData, m.rtosCode, m.rtosData, net.taskCycles() / 1000,
            net.rtosCycles() / 1000};
}

Row measureBuffer(bool threeTasks, int messages)
{
    Compiler compiler(paper::audioBufferSource());
    rtos::Network net;
    int prod;
    int play;
    int blink;
    if (threeTasks) {
        prod = net.addTask(compiler.compile("producer"));
        play = net.addTask(compiler.compile("playback"));
        blink = net.addTask(compiler.compile("blinker"));
        net.connect(prod, "frame_ready", play, "frame_ready");
    } else {
        prod = play = blink = net.addTask(compiler.compile("buffer_top"));
    }
    net.boot();
    for (char ev : bench::bufferEventTrace(messages)) {
        switch (ev) {
        case 's': net.inject(prod, "sample"); break;
        case 'p': net.inject(play, "play"); break;
        case 'x': net.inject(play, "stop"); break;
        case 't': net.inject(blink, "tick"); break;
        }
        net.run();
    }
    rtos::MemoryReport m = net.memory();
    return {"Buffer", threeTasks ? "3 tasks" : "1 task", m.taskCode,
            m.taskData, m.rtosCode, m.rtosData, net.taskCycles() / 1000,
            net.rtosCycles() / 1000};
}

void printRow(const Row& r)
{
    std::printf("%-8s %-8s %8zu %8zu %10zu %8zu %12llu %10llu\n", r.example,
                r.partition, r.taskCode, r.taskData, r.rtosCode, r.rtosData,
                static_cast<unsigned long long>(r.taskKcyc),
                static_cast<unsigned long long>(r.rtosKcyc));
}

void shapeCheck(const char* what, bool ok)
{
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
}

} // namespace

int main()
{
    std::printf("Table 1: synchronous/asynchronous implementation "
                "trade-offs (model units: bytes, kcycles)\n\n");
    std::printf("%-8s %-8s %8s %8s %10s %8s %12s %10s\n", "Example", "Part.",
                "TaskCode", "TaskData", "RTOSCode", "RTOSData", "TaskKcyc",
                "RTOSKcyc");

    Row s1 = measureStack(false, 500);
    Row s3 = measureStack(true, 500);
    Row b1 = measureBuffer(false, 60);
    Row b3 = measureBuffer(true, 60);
    printRow(s1);
    printRow(s3);
    printRow(b1);
    printRow(b3);

    std::printf("\nPaper's Table 1 (MIPS R3000, bytes / kcycles):\n");
    std::printf("  Stack  1 task : 1008/160  RTOS 5584/1504  time 4283/8032\n");
    std::printf("  Stack  3 tasks: 1632/352  RTOS 5872/1744  time 4161/8815\n");
    std::printf("  Buffer 1 task : 7072/80   RTOS 7120/3040  time 51/123\n");
    std::printf("  Buffer 3 tasks: 2544/144  RTOS 7376/3536  time 57/145\n");

    std::printf("\nShape checks against the paper:\n");
    shapeCheck("stack: sync task code < async task code (tight coupling)",
               s1.taskCode < s3.taskCode);
    shapeCheck("stack: sync task data < async task data", s1.taskData < s3.taskData);
    shapeCheck("buffer: sync task code > async task code (product blowup)",
               b1.taskCode > b3.taskCode);
    shapeCheck("RTOS code grows with task count (stack)", s1.rtosCode < s3.rtosCode);
    shapeCheck("RTOS data grows with task count (stack)", s1.rtosData < s3.rtosData);
    shapeCheck("RTOS code grows with task count (buffer)", b1.rtosCode < b3.rtosCode);
    shapeCheck("stack: async kernel time > sync kernel time (inter-task events)",
               s3.rtosKcyc > s1.rtosKcyc);
    shapeCheck("buffer: async kernel time > sync kernel time",
               b3.rtosKcyc > b1.rtosKcyc);
    shapeCheck("buffer workload is orders of magnitude lighter than stack",
               b1.taskKcyc * 10 < s1.taskKcyc);
    return 0;
}
