// Reaction-throughput comparison: tree-walking vs flat-table/bytecode
// execution of the same compiled EFSM — at both -O0 (verbatim tables)
// and -O2 (post-flatten optimizer) — plus the Reactive-C-style baseline
// and the AOT native backend (generated C compiled + dlopened, see
// src/runtime/native_module.h).
//
// Workload: the paper's protocol stack (Figure 4 toplevel) driven with the
// standard corrupted-packet byte stream — the data-heaviest paper source
// (per-byte assembly actions, the extracted CRC fold, multi-instant header
// walk). Plain wall-clock, median of several repetitions; emits
// BENCH_reaction_throughput.json (modes flat_bytecode / flat_bytecode_O0 /
// tree_walk / rc_baseline / aot_native + speedup_o2_vs_o0 +
// speedup_aot_vs_o2_vm) for the CI trajectory (smoke step, no
// thresholds), so the optimizer and AOT deltas land in the bench
// trajectory alongside the flat-vs-tree one. When no host C compiler is
// available the aot_native mode is omitted with a stderr note.
//
// Usage: bench_reaction_throughput [--packets N] [--reps N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace ecl;

namespace {

struct RunStats {
    double nsPerReaction = 0;
    std::uint64_t reactions = 0;
    std::uint64_t treeTests = 0;
    std::uint64_t actionsRun = 0;
    std::uint64_t matches = 0; ///< addr_match count (workload checksum).
};

RunStats driveStream(rt::ReactiveEngine& eng,
                     const std::vector<std::uint8_t>& stream, int matchIdx,
                     int inByteIdx)
{
    RunStats s;
    eng.react(); // boot
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint8_t b : stream) {
        eng.setInputScalar(inByteIdx, b);
        rt::ReactionResult r = eng.react();
        s.treeTests += r.treeTests;
        s.actionsRun += r.actionsRun;
        ++s.reactions;
        if (eng.outputPresent(matchIdx)) ++s.matches;
    }
    for (int i = 0; i < 10; ++i) { // drain trailing delta instants
        rt::ReactionResult r = eng.react();
        s.treeTests += r.treeTests;
        s.actionsRun += r.actionsRun;
        ++s.reactions;
        if (eng.outputPresent(matchIdx)) ++s.matches;
    }
    auto t1 = std::chrono::steady_clock::now();
    s.nsPerReaction =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(s.reactions);
    return s;
}

/// Median of each mode's per-rep timings (counters are identical per
/// run). Reps are interleaved round-robin across ALL modes by the
/// caller, so transient machine noise lands on every mode instead of
/// biasing whichever mode happened to own that time slice.
RunStats median(std::vector<RunStats> runs)
{
    std::sort(runs.begin(), runs.end(),
              [](const RunStats& a, const RunStats& b) {
                  return a.nsPerReaction < b.nsPerReaction;
              });
    return runs[runs.size() / 2];
}

bench::JsonValue modeJson(const RunStats& s)
{
    return bench::JsonValue::obj()
        .set("ns_per_reaction", s.nsPerReaction)
        .set("reactions", static_cast<double>(s.reactions))
        .set("tree_tests", static_cast<double>(s.treeTests))
        .set("actions_run", static_cast<double>(s.actionsRun))
        .set("addr_matches", static_cast<double>(s.matches));
}

} // namespace

int main(int argc, char** argv)
{
    int packets = 500;
    int reps = 5;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc)
            packets = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
            reps = std::atoi(argv[++i]);
    }
    if (packets < 1 || reps < 1) {
        std::fprintf(stderr, "usage: %s [--packets N>=1] [--reps N>=1]\n",
                     argv[0]);
        return 2;
    }

    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel"); // default -O2 fast path
    CompileOptions o0opts;
    o0opts.optLevel = 0;
    auto modO0 = compiler.compile("toplevel", o0opts);
    if (!mod->hasFlatProgram() || !modO0->hasFlatProgram()) {
        std::fprintf(stderr,
                     "flat program unavailable for toplevel — aborting\n");
        return 1;
    }
    auto stream = bench::stackByteStream(packets);
    int inByteIdx = mod->moduleSema().findSignal("in_byte")->index;
    int matchIdx = mod->moduleSema().findSignal("addr_match")->index;

    // AOT availability probe: makeEngine(Native) falls back to the VM
    // when no host C compiler (or no flat program) is available.
    bool haveAot = false;
    {
        auto probe = mod->makeEngine(EngineKind::Native);
        haveAot = std::string(probe->backendName()) == "native";
        if (!haveAot)
            std::fprintf(stderr,
                         "note: native backend unavailable (no host C "
                         "compiler?) — omitting aot_native mode\n");
    }

    std::vector<RunStats> flatRuns, flatO0Runs, treeRuns, rcRuns, aotRuns;
    for (int i = 0; i < reps; ++i) {
        {
            auto e = mod->makeEngine(EngineKind::Flat);
            flatRuns.push_back(driveStream(*e, stream, matchIdx, inByteIdx));
        }
        if (haveAot) {
            auto e = mod->makeEngine(EngineKind::Native);
            aotRuns.push_back(driveStream(*e, stream, matchIdx, inByteIdx));
        }
        {
            auto e = modO0->makeEngine(EngineKind::Flat);
            flatO0Runs.push_back(
                driveStream(*e, stream, matchIdx, inByteIdx));
        }
        {
            auto e = mod->makeEngine(EngineKind::TreeWalk);
            treeRuns.push_back(driveStream(*e, stream, matchIdx, inByteIdx));
        }
        {
            auto e = mod->makeBaselineEngine();
            rcRuns.push_back(driveStream(*e, stream, matchIdx, inByteIdx));
        }
    }
    RunStats flat = median(std::move(flatRuns));
    RunStats flatO0 = median(std::move(flatO0Runs));
    RunStats tree = median(std::move(treeRuns));
    RunStats rc = median(std::move(rcRuns));
    RunStats aot;
    if (haveAot) aot = median(std::move(aotRuns));

    // State minimization and the bytecode optimizer preserve the
    // engine-level counters exactly (identical trees walked, identical
    // actions run) — only data-instruction counts may shrink at -O2.
    if (flat.matches != tree.matches || flat.matches != rc.matches ||
        flat.matches != flatO0.matches ||
        flat.treeTests != tree.treeTests ||
        flat.treeTests != flatO0.treeTests ||
        flat.actionsRun != flatO0.actionsRun ||
        flat.actionsRun != tree.actionsRun ||
        (haveAot &&
         (aot.matches != flat.matches || aot.treeTests != flat.treeTests ||
          aot.actionsRun != flat.actionsRun))) {
        std::fprintf(stderr,
                     "mode disagreement: flat/tree/rc matches %llu/%llu/%llu"
                     " (tree_tests %llu/%llu)\n",
                     static_cast<unsigned long long>(flat.matches),
                     static_cast<unsigned long long>(tree.matches),
                     static_cast<unsigned long long>(rc.matches),
                     static_cast<unsigned long long>(flat.treeTests),
                     static_cast<unsigned long long>(tree.treeTests));
        return 1;
    }

    std::printf("reaction throughput — protocol stack, %d packets, "
                "median of %d reps\n",
                packets, reps);
    std::printf("  %-22s %12s %12s %12s\n", "mode", "ns/reaction",
                "tree tests", "actions");
    auto row = [](const char* name, const RunStats& s) {
        std::printf("  %-22s %12.1f %12llu %12llu\n", name, s.nsPerReaction,
                    static_cast<unsigned long long>(s.treeTests),
                    static_cast<unsigned long long>(s.actionsRun));
    };
    if (haveAot) row("aot-native", aot);
    row("flat+bytecode (-O2)", flat);
    row("flat+bytecode (-O0)", flatO0);
    row("tree-walk", tree);
    row("rc-baseline", rc);
    std::printf("  speedup flat vs tree-walk: %.2fx\n",
                tree.nsPerReaction / flat.nsPerReaction);
    std::printf("  speedup flat vs rc-baseline: %.2fx\n",
                rc.nsPerReaction / flat.nsPerReaction);
    std::printf("  speedup -O2 vs -O0: %.2fx\n",
                flatO0.nsPerReaction / flat.nsPerReaction);
    if (haveAot)
        std::printf("  speedup aot vs -O2 VM: %.2fx\n",
                    flat.nsPerReaction / aot.nsPerReaction);

    bench::JsonValue root = bench::JsonValue::obj();
    bench::setStandardHeader(root, "reaction_throughput",
                             "protocol_stack_toplevel", 2);
    bench::JsonValue modes = bench::JsonValue::obj()
                                 .set("flat_bytecode", modeJson(flat))
                                 .set("flat_bytecode_O0", modeJson(flatO0))
                                 .set("tree_walk", modeJson(tree))
                                 .set("rc_baseline", modeJson(rc));
    if (haveAot) modes.set("aot_native", modeJson(aot));
    root.set("packets", static_cast<double>(packets))
        .set("reps", static_cast<double>(reps))
        .set("modes", std::move(modes))
        .set("speedup_flat_vs_tree",
             tree.nsPerReaction / flat.nsPerReaction)
        .set("speedup_flat_vs_rc", rc.nsPerReaction / flat.nsPerReaction)
        .set("speedup_o2_vs_o0", flatO0.nsPerReaction / flat.nsPerReaction);
    if (haveAot)
        root.set("speedup_aot_vs_o2_vm",
                 flat.nsPerReaction / aot.nsPerReaction);
    bench::writeBenchJson("reaction_throughput", root);
    return 0;
}
