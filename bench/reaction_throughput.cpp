// Reaction-throughput comparison: tree-walking vs flat-table/bytecode
// execution of the same compiled EFSM, plus the Reactive-C-style baseline.
//
// Workload: the paper's protocol stack (Figure 4 toplevel) driven with the
// standard corrupted-packet byte stream — the data-heaviest paper source
// (per-byte assembly actions, the extracted CRC fold, multi-instant header
// walk). Plain wall-clock, median of several repetitions; emits
// BENCH_reaction_throughput.json for the CI trajectory (smoke step, no
// thresholds).
//
// Usage: bench_reaction_throughput [--packets N] [--reps N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace ecl;

namespace {

struct RunStats {
    double nsPerReaction = 0;
    std::uint64_t reactions = 0;
    std::uint64_t treeTests = 0;
    std::uint64_t actionsRun = 0;
    std::uint64_t matches = 0; ///< addr_match count (workload checksum).
};

RunStats driveStream(rt::ReactiveEngine& eng,
                     const std::vector<std::uint8_t>& stream, int matchIdx,
                     int inByteIdx)
{
    RunStats s;
    eng.react(); // boot
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint8_t b : stream) {
        eng.setInputScalar(inByteIdx, b);
        rt::ReactionResult r = eng.react();
        s.treeTests += r.treeTests;
        s.actionsRun += r.actionsRun;
        ++s.reactions;
        if (eng.outputPresent(matchIdx)) ++s.matches;
    }
    for (int i = 0; i < 10; ++i) { // drain trailing delta instants
        rt::ReactionResult r = eng.react();
        s.treeTests += r.treeTests;
        s.actionsRun += r.actionsRun;
        ++s.reactions;
        if (eng.outputPresent(matchIdx)) ++s.matches;
    }
    auto t1 = std::chrono::steady_clock::now();
    s.nsPerReaction =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(s.reactions);
    return s;
}

/// Median ns/reaction over `reps` runs (counters are identical per run).
template <typename MakeEngine>
RunStats medianRun(MakeEngine make, const std::vector<std::uint8_t>& stream,
                   int matchIdx, int inByteIdx, int reps)
{
    std::vector<RunStats> runs;
    runs.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        auto eng = make();
        runs.push_back(driveStream(*eng, stream, matchIdx, inByteIdx));
    }
    std::sort(runs.begin(), runs.end(),
              [](const RunStats& a, const RunStats& b) {
                  return a.nsPerReaction < b.nsPerReaction;
              });
    return runs[runs.size() / 2];
}

bench::JsonValue modeJson(const RunStats& s)
{
    return bench::JsonValue::obj()
        .set("ns_per_reaction", s.nsPerReaction)
        .set("reactions", static_cast<double>(s.reactions))
        .set("tree_tests", static_cast<double>(s.treeTests))
        .set("actions_run", static_cast<double>(s.actionsRun))
        .set("addr_matches", static_cast<double>(s.matches));
}

} // namespace

int main(int argc, char** argv)
{
    int packets = 500;
    int reps = 5;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc)
            packets = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
            reps = std::atoi(argv[++i]);
    }
    if (packets < 1 || reps < 1) {
        std::fprintf(stderr, "usage: %s [--packets N>=1] [--reps N>=1]\n",
                     argv[0]);
        return 2;
    }

    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    if (!mod->hasFlatProgram()) {
        std::fprintf(stderr,
                     "flat program unavailable for toplevel — aborting\n");
        return 1;
    }
    auto stream = bench::stackByteStream(packets);
    int inByteIdx = mod->moduleSema().findSignal("in_byte")->index;
    int matchIdx = mod->moduleSema().findSignal("addr_match")->index;

    RunStats flat = medianRun(
        [&] { return mod->makeEngine(EngineKind::Flat); }, stream, matchIdx,
        inByteIdx, reps);
    RunStats tree = medianRun(
        [&] { return mod->makeEngine(EngineKind::TreeWalk); }, stream,
        matchIdx, inByteIdx, reps);
    RunStats rc = medianRun([&] { return mod->makeBaselineEngine(); },
                            stream, matchIdx, inByteIdx, reps);

    if (flat.matches != tree.matches || flat.matches != rc.matches ||
        flat.treeTests != tree.treeTests ||
        flat.actionsRun != tree.actionsRun) {
        std::fprintf(stderr,
                     "mode disagreement: flat/tree/rc matches %llu/%llu/%llu"
                     " (tree_tests %llu/%llu)\n",
                     static_cast<unsigned long long>(flat.matches),
                     static_cast<unsigned long long>(tree.matches),
                     static_cast<unsigned long long>(rc.matches),
                     static_cast<unsigned long long>(flat.treeTests),
                     static_cast<unsigned long long>(tree.treeTests));
        return 1;
    }

    std::printf("reaction throughput — protocol stack, %d packets, "
                "median of %d reps\n",
                packets, reps);
    std::printf("  %-22s %12s %12s %12s\n", "mode", "ns/reaction",
                "tree tests", "actions");
    auto row = [](const char* name, const RunStats& s) {
        std::printf("  %-22s %12.1f %12llu %12llu\n", name, s.nsPerReaction,
                    static_cast<unsigned long long>(s.treeTests),
                    static_cast<unsigned long long>(s.actionsRun));
    };
    row("flat+bytecode", flat);
    row("tree-walk", tree);
    row("rc-baseline", rc);
    std::printf("  speedup flat vs tree-walk: %.2fx\n",
                tree.nsPerReaction / flat.nsPerReaction);
    std::printf("  speedup flat vs rc-baseline: %.2fx\n",
                rc.nsPerReaction / flat.nsPerReaction);

    bench::JsonValue root = bench::JsonValue::obj();
    root.set("bench", "reaction_throughput")
        .set("workload", "protocol_stack_toplevel")
        .set("packets", static_cast<double>(packets))
        .set("reps", static_cast<double>(reps))
        .set("modes", bench::JsonValue::obj()
                          .set("flat_bytecode", modeJson(flat))
                          .set("tree_walk", modeJson(tree))
                          .set("rc_baseline", modeJson(rc)))
        .set("speedup_flat_vs_tree",
             tree.nsPerReaction / flat.nsPerReaction)
        .set("speedup_flat_vs_rc", rc.nsPerReaction / flat.nsPerReaction);
    bench::writeBenchJson("reaction_throughput", root);
    return 0;
}
