// Benchmark regression gating: compares a current BENCH_*.json against a
// committed baseline (bench/baselines/) and classifies every metric.
//
// The bench JSON schema is flat — objects, numbers and strings only (see
// bench_util.h) — so the parser here flattens nested objects into
// dotted-path keys ("modes.flat_bytecode.ns_per_reaction") and the
// classifier decides per key how a difference is judged:
//
//  * ExactCounter   — workload checksums and deterministic counters
//                     (reactions, tree_tests, actions_run, addr_matches,
//                     states, transitions, workload parameters,
//                     schema_version, opt_level). Any difference means
//                     the two runs measured DIFFERENT work — comparison
//                     is invalid and the diff fails loudly rather than
//                     letting a perf number lie.
//  * LowerBetter    — latencies and durations (ns_per_reaction,
//                     seconds). Regression when current exceeds baseline
//                     by more than the noise threshold.
//  * HigherBetter   — rates, speedups and reduction factors
//                     (states_per_sec, reactions_per_sec, speedup_*,
//                     *_factor). Regression when current falls short by
//                     more than the threshold.
//  * Informational  — shape metrics with no better/worse direction
//                     (peak_frontier, depth_reached); reported, never
//                     gating.
//  * Ignored        — provenance (git_sha) that differs by construction.
//
// Strings other than git_sha identify the bench/workload and must match
// exactly. A metric present in the baseline but missing from the current
// run fails (a silently dropped metric is how regressions hide); new
// metrics in the current run are reported informationally.
//
// Two per-metric knobs keep the gate honest (DiffOptions): `thresholds`
// overrides the relative noise threshold for a named metric, and
// `floors` sets an absolute minimum a metric may never fall below even
// when the relative diff passes — the guard against baselines recorded
// on slower hardware than the gate runs on. Both look up the full
// dotted path first, then the bare leaf name.
//
// Used by tools/bench_diff.cpp (the CI gate) and unit-tested by
// tests/test_bench_diff.cpp, including the deliberate-regression path.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/support/diagnostics.h"

namespace ecl::bench {

// ---------------------------------------------------------------------------
// Flat JSON parsing (the bench_util.h subset: objects / numbers / strings)
// ---------------------------------------------------------------------------

struct FlatBench {
    std::map<std::string, double> nums;      ///< Dotted path -> number.
    std::map<std::string, std::string> strs; ///< Dotted path -> string.
};

namespace detail {

class FlatParser {
public:
    explicit FlatParser(const std::string& text) : s_(text) {}

    FlatBench parse()
    {
        FlatBench out;
        skipWs();
        object("", out);
        skipWs();
        if (pos_ != s_.size()) fail("trailing content after top object");
        return out;
    }

private:
    [[noreturn]] void fail(const std::string& why) const
    {
        throw EclError("bench_diff: malformed bench JSON at byte " +
                       std::to_string(pos_) + ": " + why);
    }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size()) fail("dangling escape");
                out += s_[pos_++];
            } else {
                out += c;
            }
        }
        expect('"');
        return out;
    }

    void object(const std::string& prefix, FlatBench& out)
    {
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        while (true) {
            skipWs();
            std::string key = string();
            std::string path = prefix.empty() ? key : prefix + "." + key;
            skipWs();
            expect(':');
            skipWs();
            char c = peek();
            if (c == '{') {
                object(path, out);
            } else if (c == '"') {
                out.strs[path] = string();
            } else if (c == '-' || c == '+' ||
                       std::isdigit(static_cast<unsigned char>(c))) {
                std::size_t end = 0;
                double v = std::stod(s_.substr(pos_), &end);
                if (end == 0) fail("bad number");
                pos_ += end;
                out.nums[path] = v;
            } else {
                fail("expected object, string or number value");
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            break;
        }
        skipWs();
        expect('}');
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

} // namespace detail

/// Parses a BENCH_*.json body. Throws EclError on malformed input.
inline FlatBench parseFlatBench(const std::string& text)
{
    return detail::FlatParser(text).parse();
}

// ---------------------------------------------------------------------------
// Metric classification
// ---------------------------------------------------------------------------

enum class MetricClass {
    ExactCounter,
    LowerBetter,
    HigherBetter,
    Informational,
    Ignored,
};

inline const char* metricClassName(MetricClass c)
{
    switch (c) {
    case MetricClass::ExactCounter: return "counter";
    case MetricClass::LowerBetter: return "lower-better";
    case MetricClass::HigherBetter: return "higher-better";
    case MetricClass::Informational: return "info";
    case MetricClass::Ignored: return "ignored";
    }
    return "?";
}

/// Classifies by the LAST path segment, so per-mode metrics inherit the
/// top-level meaning ("modes.batch_t4.ns_per_reaction" is LowerBetter).
inline MetricClass classifyMetric(const std::string& dottedKey)
{
    std::size_t dot = dottedKey.rfind('.');
    const std::string leaf =
        dot == std::string::npos ? dottedKey : dottedKey.substr(dot + 1);

    if (leaf == "git_sha") return MetricClass::Ignored;

    // Rates/speedups/reduction factors before durations:
    // "states_per_sec" must not match a seconds rule.
    if (leaf.rfind("speedup", 0) == 0 ||
        (leaf.size() > 8 &&
         leaf.compare(leaf.size() - 8, 8, "_per_sec") == 0) ||
        (leaf.size() > 7 &&
         leaf.compare(leaf.size() - 7, 7, "_factor") == 0))
        return MetricClass::HigherBetter;
    if (leaf.rfind("ns_per_", 0) == 0 || leaf == "seconds")
        return MetricClass::LowerBetter;

    // Deterministic work counters + workload parameters: any difference
    // invalidates the comparison.
    for (const char* exact :
         {"schema_version", "opt_level", "reactions", "tree_tests",
          "actions_run", "emits_run", "addr_matches", "states",
          "transitions", "packets", "reps", "instances", "threads",
          "depth", "messages"})
        if (leaf == exact) return MetricClass::ExactCounter;

    return MetricClass::Informational;
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

struct DiffOptions {
    /// Allowed relative slowdown/shortfall on time-like metrics before a
    /// difference counts as a regression (0.10 = 10%).
    double timeThreshold = 0.10;
    /// Per-metric overrides of timeThreshold (--threshold NAME=FRACTION).
    /// Keyed by the full dotted path or the bare leaf name; the full
    /// path wins when both are present. Lets one noisy metric run loose
    /// without loosening the whole gate — the fix for thresholds so wide
    /// they gate nothing.
    std::map<std::string, double> thresholds;
    /// Absolute floors (--floor NAME=VALUE), same key lookup: any
    /// metric whose current value falls below its floor is a regression
    /// regardless of the baseline (and floors apply to metrics the
    /// baseline does not carry yet). The backstop for baselines recorded
    /// on weaker hardware than CI runs on: a relative diff against a
    /// slow baseline passes trivially, the floor still bites.
    std::map<std::string, double> floors;
};

/// Full-dotted-path-then-leaf lookup shared by thresholds and floors.
inline const double* lookupMetricOption(
    const std::map<std::string, double>& m, const std::string& key)
{
    auto it = m.find(key);
    if (it != m.end()) return &it->second;
    std::size_t dot = key.rfind('.');
    if (dot != std::string::npos) {
        it = m.find(key.substr(dot + 1));
        if (it != m.end()) return &it->second;
    }
    return nullptr;
}

struct MetricDiff {
    std::string key;
    MetricClass cls = MetricClass::Informational;
    double baseline = 0;
    double current = 0;
    double delta = 0; ///< Relative change, signed ((cur-base)/base).
    bool regression = false;
    std::string note;
};

struct DiffResult {
    std::vector<MetricDiff> metrics;
    std::vector<std::string> errors; ///< Structural failures (missing
                                     ///< metrics, identity mismatches).
    bool regression = false;

    [[nodiscard]] std::size_t regressionCount() const
    {
        std::size_t n = 0;
        for (const MetricDiff& m : metrics)
            if (m.regression) ++n;
        return n;
    }
};

inline DiffResult diffBench(const FlatBench& baseline,
                            const FlatBench& current,
                            const DiffOptions& opts = {})
{
    DiffResult out;

    // Identity strings must agree (git_sha excepted).
    for (const auto& [key, bval] : baseline.strs) {
        if (classifyMetric(key) == MetricClass::Ignored) continue;
        auto it = current.strs.find(key);
        if (it == current.strs.end())
            out.errors.push_back("missing string field '" + key + "'");
        else if (it->second != bval)
            out.errors.push_back("identity mismatch on '" + key + "': '" +
                                 bval + "' vs '" + it->second + "'");
    }

    for (const auto& [key, bval] : baseline.nums) {
        MetricDiff d;
        d.key = key;
        d.cls = classifyMetric(key);
        d.baseline = bval;
        auto it = current.nums.find(key);
        if (it == current.nums.end()) {
            out.errors.push_back("missing metric '" + key + "'");
            continue;
        }
        d.current = it->second;
        d.delta = bval != 0 ? (d.current - bval) / bval
                            : (d.current != 0 ? 1.0 : 0.0);
        const double* tOverride = lookupMetricOption(opts.thresholds, key);
        const double threshold = tOverride ? *tOverride : opts.timeThreshold;
        switch (d.cls) {
        case MetricClass::ExactCounter:
            if (d.current != d.baseline) {
                d.regression = true;
                d.note = "counter mismatch — runs measured different work";
            }
            break;
        case MetricClass::LowerBetter:
            if (d.current > d.baseline * (1.0 + threshold)) {
                d.regression = true;
                std::ostringstream n;
                n.precision(1);
                n << std::fixed << "slower by " << d.delta * 100 << "% (>"
                  << threshold * 100 << "% threshold)";
                d.note = n.str();
            }
            break;
        case MetricClass::HigherBetter:
            if (d.current < d.baseline * (1.0 - threshold)) {
                d.regression = true;
                std::ostringstream n;
                n.precision(1);
                n << std::fixed << "dropped by " << -d.delta * 100 << "% (>"
                  << threshold * 100 << "% threshold)";
                d.note = n.str();
            }
            break;
        case MetricClass::Informational:
        case MetricClass::Ignored: break;
        }
        if (const double* floor = lookupMetricOption(opts.floors, key)) {
            if (d.current < *floor) {
                d.regression = true;
                std::ostringstream n;
                n.precision(3);
                n << std::fixed << "below absolute floor " << *floor;
                d.note = d.note.empty() ? n.str() : d.note + "; " + n.str();
            }
        }
        out.metrics.push_back(std::move(d));
    }

    // New metrics in the current run are fine — note them so reports show
    // the schema growing. Floors still apply: a floor names the minimum
    // acceptable value whether or not the baseline has caught up.
    for (const auto& [key, cval] : current.nums)
        if (!baseline.nums.count(key)) {
            MetricDiff d;
            d.key = key;
            d.cls = MetricClass::Informational;
            d.current = cval;
            d.note = "new metric (not in baseline)";
            if (const double* floor = lookupMetricOption(opts.floors, key)) {
                if (cval < *floor) {
                    d.regression = true;
                    std::ostringstream n;
                    n.precision(3);
                    n << std::fixed << "below absolute floor " << *floor;
                    d.note += "; " + n.str();
                }
            }
            out.metrics.push_back(std::move(d));
        }

    out.regression = !out.errors.empty() || out.regressionCount() > 0;
    return out;
}

/// Human-readable comparison report for one bench.
inline std::string renderReport(const std::string& name,
                                const DiffResult& r)
{
    std::ostringstream os;
    os << "== " << name << ": "
       << (r.regression ? "REGRESSION" : "ok") << " ("
       << r.regressionCount() << " regressed, " << r.errors.size()
       << " errors, " << r.metrics.size() << " metrics)\n";
    for (const std::string& e : r.errors) os << "  ERROR " << e << "\n";
    for (const MetricDiff& m : r.metrics) {
        if (!m.regression && m.note.empty()) continue;
        os.precision(3);
        os << (m.regression ? "  FAIL  " : "  note  ") << m.key << " ["
           << metricClassName(m.cls) << "] " << std::fixed << m.baseline
           << " -> " << m.current;
        if (!m.note.empty()) os << " — " << m.note;
        os << "\n";
    }
    return os.str();
}

} // namespace ecl::bench
