// Ablation A2 — data-loop extraction vs forced reactive iteration.
//
// Section 4 of the paper defines the two loop classes and notes that
// `await()` "can also be used to force a loop to be implemented as a
// sequence of EFSM transitions, instead of being extracted as C code".
// This bench compiles checkcrc both ways and reports the trade-off:
//  * extracted (paper Figure 2): the CRC fold is one atomic C function —
//    single-instant latency, small EFSM;
//  * reactive (await() inside the loop): one byte per instant — the EFSM
//    carries the loop, reaction latency spreads over PKTSIZE instants.
#include <cstdio>

#include "src/cost/cost.h"
#include "src/core/compiler.h"
#include "src/core/paper_sources.h"

using namespace ecl;

namespace {

std::string reactiveCrcSource()
{
    // checkcrc with the CRC fold forced into EFSM transitions.
    return R"ECL(
#define PKTSIZE 64

typedef unsigned char byte;
typedef struct { byte packet[PKTSIZE]; } packet_t;

module checkcrc_reactive (input pure reset,
                          input packet_t inpkt, output bool crc_ok)
{
    int i;
    unsigned int crc;

    while (1) {
        do {
            await (inpkt);
            for (i = 0, crc = 0; i < PKTSIZE; i++) {
                await ();
                crc = (crc ^ inpkt.packet[i]) << 1;
            }
            emit_v (crc_ok, crc == 0);
        } abort (reset);
    }
}
)ECL";
}

std::string extractedCrcSource()
{
    return R"ECL(
#define PKTSIZE 64

typedef unsigned char byte;
typedef struct { byte packet[PKTSIZE]; } packet_t;

module checkcrc_extracted (input pure reset,
                           input packet_t inpkt, output bool crc_ok)
{
    int i;
    unsigned int crc;

    while (1) {
        do {
            await (inpkt);
            for (i = 0, crc = 0; i < PKTSIZE; i++) {
                crc = (crc ^ inpkt.packet[i]) << 1;
            }
            await ();
            emit_v (crc_ok, crc == 0);
        } abort (reset);
    }
}
)ECL";
}

struct Result {
    std::size_t states;
    std::size_t code;
    std::uint64_t cyclesPerPacket;
    int instantsToVerdict;
};

Result measure(const std::string& source, const std::string& module)
{
    Compiler compiler(source);
    auto mod = compiler.compile(module);
    cost::CostModel cm;

    auto eng = mod->makeEngine();
    std::uint64_t cycles = cm.reactionCycles(eng->react());

    Value pkt(mod->moduleSema().findSignal("inpkt")->valueType);
    eng->setInputValue("inpkt", pkt); // all-zero packet: crc == 0 holds
    int instants = 0;
    bool verdict = false;
    while (!verdict && instants < 200) {
        cycles += cm.reactionCycles(eng->react());
        ++instants;
        verdict = eng->outputPresent("crc_ok");
    }
    return {mod->machine().stats().states, cm.moduleSize(mod->machine()).codeBytes,
            cycles, instants};
}

} // namespace

int main()
{
    Result ext = measure(extractedCrcSource(), "checkcrc_extracted");
    Result rea = measure(reactiveCrcSource(), "checkcrc_reactive");

    std::printf("Ablation A2: data-loop extraction vs reactive iteration "
                "(one 64-byte packet)\n\n");
    std::printf("%-12s %8s %10s %14s %18s\n", "variant", "states",
                "code [B]", "cycles/pkt", "instants->verdict");
    std::printf("%-12s %8zu %10zu %14llu %18d\n", "extracted", ext.states,
                ext.code, static_cast<unsigned long long>(ext.cyclesPerPacket),
                ext.instantsToVerdict);
    std::printf("%-12s %8zu %10zu %14llu %18d\n", "reactive", rea.states,
                rea.code, static_cast<unsigned long long>(rea.cyclesPerPacket),
                rea.instantsToVerdict);

    std::printf("\nShape checks:\n");
    std::printf("  [%s] extracted verdict within 2 instants, reactive needs "
                "~PKTSIZE\n",
                (ext.instantsToVerdict <= 2 && rea.instantsToVerdict >= 60)
                    ? "ok"
                    : "MISMATCH");
    std::printf("  [%s] reactive variant pays per-instant reaction overhead "
                "(more total cycles)\n",
                rea.cyclesPerPacket > ext.cyclesPerPacket ? "ok" : "MISMATCH");
    return 0;
}
