// Ablation A1 — EFSM compilation vs Reactive-C-style interpretation.
//
// The related-work section argues RC's "direct compilation to C" yields an
// "inefficient, interpreted implementation", while ECL collapses control
// into an EFSM whose case analysis happens at compile time. This bench
// runs the same protocol-stack workload through both engines and reports
//  * wall-clock reactions/second (google-benchmark), and
//  * modeled R3000 cycles plus modeled code size for both schemes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/cost/cost.h"

using namespace ecl;

namespace {

std::shared_ptr<CompiledModule> compileOnce()
{
    static Compiler compiler(paper::protocolStackSource());
    static std::shared_ptr<CompiledModule> mod = compiler.compile("toplevel");
    return mod;
}

template <typename MakeEngine>
void runStream(benchmark::State& state, MakeEngine make)
{
    auto mod = compileOnce();
    auto eng = make(*mod);
    eng->react();
    auto stream = bench::stackByteStream(1);
    std::size_t i = 0;
    for (auto _ : state) {
        eng->setInputScalar("in_byte", stream[i % stream.size()]);
        benchmark::DoNotOptimize(eng->react());
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_EfsmEngine(benchmark::State& state)
{
    runStream(state, [](const CompiledModule& m) { return m.makeEngine(); });
}
BENCHMARK(BM_EfsmEngine);

void BM_RcBaselineEngine(benchmark::State& state)
{
    runStream(state,
              [](const CompiledModule& m) { return m.makeBaselineEngine(); });
}
BENCHMARK(BM_RcBaselineEngine);

/// Modeled comparison printed once at exit (not timing-based).
struct ModelReport {
    ~ModelReport()
    {
        auto mod = compileOnce();
        cost::CostModel cm;
        auto stream = bench::stackByteStream(100);

        auto efsm = mod->makeEngine();
        auto rc = mod->makeBaselineEngine();
        std::uint64_t efsmCycles = cm.reactionCycles(efsm->react());
        std::uint64_t rcCycles = cm.reactionCycles(rc->react());
        for (std::uint8_t b : stream) {
            efsm->setInputScalar("in_byte", b);
            rc->setInputScalar("in_byte", b);
            efsmCycles += cm.reactionCycles(efsm->react());
            rcCycles += cm.reactionCycles(rc->react());
        }
        cost::CodeSize efsmSize = cm.moduleSize(mod->machine());
        cost::CodeSize rcSize =
            cm.baselineSize(mod->reactiveProgram(), mod->moduleSema());
        std::printf(
            "\n[model] 100-packet stream, toplevel:\n"
            "  EFSM (ECL):        %10llu cycles, code %zu B, data %zu B\n"
            "  interpreted (RC):  %10llu cycles, code %zu B, data %zu B\n"
            "  cycle ratio RC/EFSM = %.2f (paper: EFSM reactions are "
            "faster; RC pays interpretation per instant)\n",
            static_cast<unsigned long long>(efsmCycles), efsmSize.codeBytes,
            efsmSize.dataBytes, static_cast<unsigned long long>(rcCycles),
            rcSize.codeBytes, rcSize.dataBytes,
            static_cast<double>(rcCycles) / static_cast<double>(efsmCycles));
    }
};
ModelReport reportAtExit;

} // namespace

BENCHMARK_MAIN();
