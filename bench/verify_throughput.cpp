// Verification throughput: explicit-state exploration over the shared
// flat tables (src/verify), reported as states/sec.
//
// Workload: depth-bounded BFS over a paper module (default
// stack/assemble — its packet-byte accumulation grows the reachable set
// combinatorially with depth, so the frontier stays wide and the worker
// shards stay busy). Each requested thread count runs a fresh explorer
// over the same space; determinism means every mode interns the exact
// same states, so states/sec isolates expansion throughput.
//
// Emits BENCH_verify_throughput.json with the standard `instances`
// (= states explored) and `threads` scaling fields plus per-mode
// breakdowns (CI smoke step, no thresholds).
//
// Usage: bench_verify_throughput [--paper stack|buffer] [--module NAME]
//                                [--depth N] [--threads T] [--reps N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/verify/explorer.h"

using namespace ecl;

namespace {

verify::ExploreStats runOnce(const CompiledModule& mod, int depth,
                             int threads)
{
    verify::ExplorerOptions opts;
    opts.maxDepth = depth;
    opts.threads = threads;
    opts.maxStates = 2'000'000;
    auto ex = mod.makeExplorer(opts);
    verify::ExploreResult res = ex->run();
    if (res.violated) {
        std::fprintf(stderr, "unexpected violation in bench workload\n");
        std::exit(1);
    }
    return res.stats;
}

} // namespace

int main(int argc, char** argv)
{
    std::string paper = "stack";
    std::string module = "assemble";
    int depth = 12;
    int threads = 4;
    int reps = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--paper" && i + 1 < argc) paper = argv[++i];
        else if (arg == "--module" && i + 1 < argc) module = argv[++i];
        else if (arg == "--depth" && i + 1 < argc) depth = std::atoi(argv[++i]);
        else if (arg == "--threads" && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
        else {
            std::fprintf(stderr,
                         "usage: bench_verify_throughput [--paper "
                         "stack|buffer] [--module NAME] [--depth N] "
                         "[--threads T] [--reps N]\n");
            return 2;
        }
    }

    Compiler compiler(paper == "buffer" ? paper::audioBufferSource()
                                        : paper::protocolStackSource());
    auto mod = compiler.compile(module);

    bench::JsonValue root = bench::JsonValue::obj();
    bench::setStandardHeader(root, "verify_throughput", paper + "/" + module,
                             2);
    root.set("depth", static_cast<double>(depth));

    std::uint64_t headlineStates = 0;
    for (int t : {1, threads}) {
        verify::ExploreStats best{};
        for (int r = 0; r < reps; ++r) {
            verify::ExploreStats s = runOnce(*mod, depth, t);
            if (r == 0 || s.statesPerSec > best.statesPerSec) best = s;
        }
        headlineStates = best.states;
        bench::JsonValue m = bench::JsonValue::obj();
        bench::setScale(m, static_cast<int>(best.states), t);
        m.set("states", static_cast<double>(best.states));
        m.set("transitions", static_cast<double>(best.transitions));
        m.set("peak_frontier", static_cast<double>(best.peakFrontier));
        m.set("depth_reached", static_cast<double>(best.depthReached));
        m.set("seconds", best.seconds);
        m.set("states_per_sec", best.statesPerSec);
        root.set("explore_t" + std::to_string(t), std::move(m));
        std::printf("explore_t%-2d %8llu states  %10.0f states/s  "
                    "peak frontier %llu\n",
                    t, static_cast<unsigned long long>(best.states),
                    best.statesPerSec,
                    static_cast<unsigned long long>(best.peakFrontier));
        if (t == threads) break; // threads == 1: single mode
    }
    bench::setScale(root, static_cast<int>(headlineStates), threads);
    bench::writeBenchJson("verify_throughput", root);
    return 0;
}
