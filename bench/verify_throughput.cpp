// Verification throughput: explicit-state exploration over the shared
// flat tables (src/verify), reported as states/sec.
//
// Workload: depth-bounded BFS over a paper module (default
// stack/assemble — its packet-byte accumulation grows the reachable set
// combinatorially with depth, so the frontier stays wide and the worker
// shards stay busy). Each requested thread count runs a fresh explorer
// over the same space; determinism means every mode interns the exact
// same states, so states/sec isolates expansion throughput.
//
// Beyond the thread-scaling headline, three mode families measure the
// scaling machinery itself:
//  * store_exact / store_compressed / store_bitstate — the same bounded
//    exploration through each StateStore kind (identical `states`
//    counters for the non-lossy kinds; `store_memory_bytes` shows what
//    the memory went to);
//  * por_off / por_on — a pure-par wide-independence program explored
//    with partial-order reduction off vs on, plus the headline
//    `por_reduction_factor` (unreduced states / reduced states);
//  * native_succ — design successors computed by the AOT native
//    reaction, plus `speedup_native_succ_vs_vm` against the
//    1-thread VM run (1.0 with `used_native_succ` 0 when no host C
//    compiler is available).
//
// Emits BENCH_verify_throughput.json with the standard `instances`
// (= states explored) and `threads` scaling fields plus per-mode
// breakdowns, gated by bench_diff (CI pins --floor
// por_reduction_factor=3).
//
// Usage: bench_verify_throughput [--paper stack|buffer] [--module NAME]
//                                [--depth N] [--threads T] [--reps N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/corpus/program_gen.h"
#include "src/verify/explorer.h"

using namespace ecl;

namespace {

verify::ExploreStats runOpts(const CompiledModule& mod,
                             verify::ExplorerOptions opts)
{
    opts.maxStates = 2'000'000;
    auto ex = mod.makeExplorer(std::move(opts));
    verify::ExploreResult res = ex->run();
    if (res.violated) {
        std::fprintf(stderr, "unexpected violation in bench workload\n");
        std::exit(1);
    }
    return res.stats;
}

verify::ExploreStats runOnce(const CompiledModule& mod, int depth,
                             int threads)
{
    verify::ExplorerOptions opts;
    opts.maxDepth = depth;
    opts.threads = threads;
    return runOpts(mod, std::move(opts));
}

/// Best-of-reps run of one configuration, serialized as a mode object.
verify::ExploreStats benchMode(bench::JsonValue& root,
                               const std::string& name,
                               const CompiledModule& mod,
                               const verify::ExplorerOptions& opts,
                               int reps)
{
    verify::ExploreStats best{};
    for (int r = 0; r < reps; ++r) {
        verify::ExploreStats s = runOpts(mod, opts);
        if (r == 0 || s.statesPerSec > best.statesPerSec) best = s;
    }
    bench::JsonValue m = bench::JsonValue::obj();
    bench::setScale(m, static_cast<int>(best.states), opts.threads);
    m.set("states", static_cast<double>(best.states));
    m.set("transitions", static_cast<double>(best.transitions));
    m.set("seconds", best.seconds);
    m.set("states_per_sec", best.statesPerSec);
    m.set("store_memory_bytes",
          static_cast<double>(best.storeMemoryBytes));
    if (opts.partialOrder)
        m.set("letters_reduced",
              static_cast<double>(best.lettersReduced));
    std::printf("%-16s %8llu states  %10.0f states/s  store %llu B\n",
                name.c_str(),
                static_cast<unsigned long long>(best.states),
                best.statesPerSec,
                static_cast<unsigned long long>(best.storeMemoryBytes));
    root.set(name, std::move(m));
    return best;
}

} // namespace

int main(int argc, char** argv)
{
    std::string paper = "stack";
    std::string module = "assemble";
    int depth = 12;
    int threads = 4;
    int reps = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--paper" && i + 1 < argc) paper = argv[++i];
        else if (arg == "--module" && i + 1 < argc) module = argv[++i];
        else if (arg == "--depth" && i + 1 < argc) depth = std::atoi(argv[++i]);
        else if (arg == "--threads" && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
        else {
            std::fprintf(stderr,
                         "usage: bench_verify_throughput [--paper "
                         "stack|buffer] [--module NAME] [--depth N] "
                         "[--threads T] [--reps N]\n");
            return 2;
        }
    }

    Compiler compiler(paper == "buffer" ? paper::audioBufferSource()
                                        : paper::protocolStackSource());
    auto mod = compiler.compile(module);

    bench::JsonValue root = bench::JsonValue::obj();
    bench::setStandardHeader(root, "verify_throughput", paper + "/" + module,
                             2);
    root.set("depth", static_cast<double>(depth));

    std::uint64_t headlineStates = 0;
    verify::ExploreStats vmBaseline{}; ///< 1-thread VM run (speedup ref).
    for (int t : {1, threads}) {
        verify::ExploreStats best{};
        for (int r = 0; r < reps; ++r) {
            verify::ExploreStats s = runOnce(*mod, depth, t);
            if (r == 0 || s.statesPerSec > best.statesPerSec) best = s;
        }
        if (t == 1) vmBaseline = best;
        headlineStates = best.states;
        bench::JsonValue m = bench::JsonValue::obj();
        bench::setScale(m, static_cast<int>(best.states), t);
        m.set("states", static_cast<double>(best.states));
        m.set("transitions", static_cast<double>(best.transitions));
        m.set("peak_frontier", static_cast<double>(best.peakFrontier));
        m.set("depth_reached", static_cast<double>(best.depthReached));
        m.set("seconds", best.seconds);
        m.set("states_per_sec", best.statesPerSec);
        root.set("explore_t" + std::to_string(t), std::move(m));
        std::printf("explore_t%-2d %8llu states  %10.0f states/s  "
                    "peak frontier %llu\n",
                    t, static_cast<unsigned long long>(best.states),
                    best.statesPerSec,
                    static_cast<unsigned long long>(best.peakFrontier));
        if (t == threads) break; // threads == 1: single mode
    }
    // Store kinds: the same bounded exploration through each StateStore
    // implementation (1 thread so the numbers isolate store cost).
    for (verify::StoreKind kind :
         {verify::StoreKind::Exact, verify::StoreKind::Compressed,
          verify::StoreKind::Bitstate}) {
        verify::ExplorerOptions sopts;
        sopts.maxDepth = depth;
        sopts.storeKind = kind;
        benchMode(root,
                  std::string("store_") + verify::storeKindName(kind),
                  *mod, sopts, reps);
    }

    // Partial-order reduction on the wide-independence pure-par program
    // (every arm awaits a private pure input, so composite input letters
    // commute with their singleton chains).
    Compiler parCompiler(corpus::pureParProgram(10));
    auto parMod = parCompiler.compile(parCompiler.moduleNames().back());
    verify::ExplorerOptions popts;
    popts.maxDepth = 3;
    verify::ExploreStats porOff =
        benchMode(root, "por_off", *parMod, popts, reps);
    popts.partialOrder = true;
    verify::ExploreStats porOn =
        benchMode(root, "por_on", *parMod, popts, reps);
    const double porFactor =
        porOn.states ? static_cast<double>(porOff.states) /
                           static_cast<double>(porOn.states)
                     : 1.0;
    root.set("por_reduction_factor", porFactor);
    std::printf("por_reduction_factor %.1fx (%llu -> %llu states)\n",
                porFactor, static_cast<unsigned long long>(porOff.states),
                static_cast<unsigned long long>(porOn.states));

    // AOT native successor computation vs the VM (honest fallback: when
    // no host C compiler is available the mode IS the VM, used_native_succ
    // reports 0 and the speedup pins to 1.0).
    verify::ExplorerOptions nopts;
    nopts.maxDepth = depth;
    nopts.nativeSuccessors = true;
    verify::ExploreStats nat =
        benchMode(root, "native_succ", *mod, nopts, reps);
    root.set("used_native_succ", nat.usedNativeSuccessors ? 1.0 : 0.0);
    const double natSpeedup =
        (nat.usedNativeSuccessors && vmBaseline.statesPerSec > 0)
            ? nat.statesPerSec / vmBaseline.statesPerSec
            : 1.0;
    root.set("speedup_native_succ_vs_vm", natSpeedup);
    std::printf("speedup_native_succ_vs_vm %.2fx (native %s)\n", natSpeedup,
                nat.usedNativeSuccessors ? "yes" : "unavailable");

    bench::setScale(root, static_cast<int>(headlineStates), threads);
    bench::writeBenchJson("verify_throughput", root);
    return 0;
}
