// Figures 1-4 — the paper's protocol-stack listings as executable artifacts.
//
// The figures are code listings, so "reproducing" them means compiling the
// exact modules and measuring their reactions. google-benchmark timings
// cover each module alone (Figures 1-3) and the synchronous composition
// (Figure 4), plus the compile path itself.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/cost/cost.h"

using namespace ecl;

namespace {

std::shared_ptr<CompiledModule> compileOnce(const char* name)
{
    static Compiler compiler(paper::protocolStackSource());
    return compiler.compile(name);
}

void BM_Fig1_AssembleBytes(benchmark::State& state)
{
    auto mod = compileOnce("assemble");
    auto eng = mod->makeEngine();
    eng->react();
    auto stream = bench::stackByteStream(2);
    std::size_t i = 0;
    for (auto _ : state) {
        eng->setInputScalar("in_byte", stream[i % stream.size()]);
        benchmark::DoNotOptimize(eng->react());
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Fig1_AssembleBytes);

void BM_Fig2_CheckCrcPacket(benchmark::State& state)
{
    auto mod = compileOnce("checkcrc");
    auto eng = mod->makeEngine();
    eng->react();
    Value pkt(mod->moduleSema().findSignal("inpkt")->valueType);
    for (std::size_t i = 0; i < pkt.size(); ++i)
        pkt.data()[i] = static_cast<std::uint8_t>(i * 3);
    for (auto _ : state) {
        eng->setInputValue("inpkt", pkt);
        eng->react(); // CRC fold (extracted data loop) runs here
        benchmark::DoNotOptimize(eng->react()); // delta: verdict out
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Fig2_CheckCrcPacket);

void BM_Fig3_ProchdrHeaderWalk(benchmark::State& state)
{
    auto mod = compileOnce("prochdr");
    auto eng = mod->makeEngine();
    eng->react();
    Value pkt(mod->moduleSema().findSignal("inpkt")->valueType);
    for (int i = 0; i < paper::kHdrSize; ++i)
        pkt.data()[i] = static_cast<std::uint8_t>(paper::kAddrByte);
    for (auto _ : state) {
        eng->setInputValue("inpkt", pkt);
        eng->react();
        eng->setInputScalar("crc_ok", 1);
        eng->react();
        for (int i = 0; i < paper::kHdrSize; ++i) eng->react();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Fig3_ProchdrHeaderWalk);

void BM_Fig4_ToplevelFullPacket(benchmark::State& state)
{
    auto mod = compileOnce("toplevel");
    auto eng = mod->makeEngine();
    eng->react();
    auto stream = bench::stackByteStream(1);
    int matches = 0;
    for (auto _ : state) {
        for (std::uint8_t b : stream) {
            eng->setInputScalar("in_byte", b);
            eng->react();
        }
        for (int i = 0; i < paper::kHdrSize + 2; ++i) {
            eng->react();
            if (eng->outputPresent("addr_match")) ++matches;
        }
    }
    benchmark::DoNotOptimize(matches);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * stream.size()));
}
BENCHMARK(BM_Fig4_ToplevelFullPacket);

void BM_Fig4_CompileToplevel(benchmark::State& state)
{
    for (auto _ : state) {
        Compiler compiler(paper::protocolStackSource());
        auto mod = compiler.compile("toplevel");
        benchmark::DoNotOptimize(mod->machine().stats().states);
    }
}
BENCHMARK(BM_Fig4_CompileToplevel);

} // namespace

BENCHMARK_MAIN();
