// Ablation A5 — decision-tree optimization ("logic optimization can be
// applied to reduce size or improve speed", paper Section 3).
//
// Compiles both paper designs with and without the EFSM optimizer and
// reports test-node counts, modeled code size, and modeled cycles for the
// standard workloads.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cost/cost.h"
#include "src/efsm/optimize.h"

using namespace ecl;

namespace {

struct Row {
    std::size_t tests;
    std::size_t code;
    std::uint64_t kcycles;
};

Row measureStack(bool optimized)
{
    Compiler compiler(paper::protocolStackSource());
    CompileOptions opts;
    opts.optimizeEfsm = optimized;
    auto mod = compiler.compile("toplevel", opts);
    cost::CostModel cm;
    auto eng = mod->makeEngine();
    std::uint64_t cycles = cm.reactionCycles(eng->react());
    for (std::uint8_t b : bench::stackByteStream(100)) {
        eng->setInputScalar("in_byte", b);
        cycles += cm.reactionCycles(eng->react());
    }
    return {mod->machine().stats().testNodes,
            cm.moduleSize(mod->machine()).codeBytes, cycles / 1000};
}

Row measureBuffer(bool optimized)
{
    Compiler compiler(paper::audioBufferSource());
    CompileOptions opts;
    opts.optimizeEfsm = optimized;
    auto mod = compiler.compile("buffer_top", opts);
    cost::CostModel cm;
    auto eng = mod->makeEngine();
    std::uint64_t cycles = cm.reactionCycles(eng->react());
    for (char ev : bench::bufferEventTrace(30)) {
        switch (ev) {
        case 's': eng->setInput("sample"); break;
        case 'p': eng->setInput("play"); break;
        case 'x': eng->setInput("stop"); break;
        case 't': eng->setInput("tick"); break;
        }
        cycles += cm.reactionCycles(eng->react());
    }
    return {mod->machine().stats().testNodes,
            cm.moduleSize(mod->machine()).codeBytes, cycles / 1000};
}

} // namespace

int main()
{
    std::printf("Ablation A5: EFSM decision-tree optimization\n\n");
    std::printf("%-10s %-6s %10s %10s %10s\n", "design", "opt", "tests",
                "code [B]", "kcycles");
    Row s0 = measureStack(false);
    Row s1 = measureStack(true);
    Row b0 = measureBuffer(false);
    Row b1 = measureBuffer(true);
    std::printf("%-10s %-6s %10zu %10zu %10llu\n", "stack", "off", s0.tests,
                s0.code, (unsigned long long)s0.kcycles);
    std::printf("%-10s %-6s %10zu %10zu %10llu\n", "stack", "on", s1.tests,
                s1.code, (unsigned long long)s1.kcycles);
    std::printf("%-10s %-6s %10zu %10zu %10llu\n", "buffer", "off", b0.tests,
                b0.code, (unsigned long long)b0.kcycles);
    std::printf("%-10s %-6s %10zu %10zu %10llu\n", "buffer", "on", b1.tests,
                b1.code, (unsigned long long)b1.kcycles);
    std::printf("\n  [%s] optimizer reduces tests without increasing cycles\n",
                (s1.tests < s0.tests && b1.tests <= b0.tests &&
                 s1.kcycles <= s0.kcycles)
                    ? "ok"
                    : "MISMATCH");
    return 0;
}
