// bench_diff — the always-on perf regression gate.
//
// Compares every BENCH_*.json in --baseline against the file of the same
// name in --current using the classifier in bench/bench_diff.h: exact
// counters must match bit-for-bit (otherwise the runs measured different
// work and the comparison is void), time-like metrics fail beyond the
// noise threshold, informational metrics are reported only.
//
// Usage:
//   bench_diff --baseline DIR --current DIR
//              [--time-threshold F] [--threshold NAME=FRACTION]...
//              [--floor NAME=VALUE]... [--report FILE]
//
// --threshold overrides the relative noise threshold for one metric
// (full dotted path or bare leaf name); --floor sets an absolute
// minimum the metric may never fall below regardless of the baseline.
//
// Exit codes (asserted by the CI bench-gate job and tests):
//   0  every bench within threshold
//   1  regression or structural mismatch found
//   2  usage / IO error
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_diff.h"

namespace fs = std::filesystem;

namespace {

bool readFile(const fs::path& p, std::string& out)
{
    std::ifstream in(p);
    if (!in) return false;
    std::stringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/// Parses a NAME=VALUE metric option ("states_per_sec=0.25").
bool parseMetricOption(const std::string& arg, std::string& name,
                       double& value)
{
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size())
        return false;
    name = arg.substr(0, eq);
    char* end = nullptr;
    value = std::strtod(arg.c_str() + eq + 1, &end);
    return end && *end == '\0';
}

void usage()
{
    std::fprintf(stderr,
                 "usage: bench_diff --baseline DIR --current DIR "
                 "[--time-threshold F] [--threshold NAME=FRACTION]... "
                 "[--floor NAME=VALUE]... [--report FILE]\n");
}

} // namespace

int main(int argc, char** argv)
{
    std::string baselineDir, currentDir, reportFile;
    ecl::bench::DiffOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--baseline" && i + 1 < argc) {
            baselineDir = argv[++i];
        } else if (arg == "--current" && i + 1 < argc) {
            currentDir = argv[++i];
        } else if (arg == "--time-threshold" && i + 1 < argc) {
            opts.timeThreshold = std::atof(argv[++i]);
            if (opts.timeThreshold <= 0) {
                std::fprintf(stderr, "bench_diff: bad threshold\n");
                return 2;
            }
        } else if (arg == "--threshold" && i + 1 < argc) {
            std::string name;
            double value = 0;
            if (!parseMetricOption(argv[++i], name, value) || value <= 0) {
                std::fprintf(stderr,
                             "bench_diff: --threshold wants NAME=FRACTION "
                             "with a positive fraction, got '%s'\n",
                             argv[i]);
                return 2;
            }
            opts.thresholds[name] = value;
        } else if (arg == "--floor" && i + 1 < argc) {
            std::string name;
            double value = 0;
            if (!parseMetricOption(argv[++i], name, value)) {
                std::fprintf(stderr,
                             "bench_diff: --floor wants NAME=VALUE, got "
                             "'%s'\n",
                             argv[i]);
                return 2;
            }
            opts.floors[name] = value;
        } else if (arg == "--report" && i + 1 < argc) {
            reportFile = argv[++i];
        } else {
            usage();
            return 2;
        }
    }
    if (baselineDir.empty() || currentDir.empty()) {
        usage();
        return 2;
    }
    if (!fs::is_directory(baselineDir) || !fs::is_directory(currentDir)) {
        std::fprintf(stderr, "bench_diff: --baseline and --current must be "
                             "directories\n");
        return 2;
    }

    std::vector<fs::path> baselines;
    for (const fs::directory_entry& e : fs::directory_iterator(baselineDir))
        if (e.is_regular_file() &&
            e.path().filename().string().rfind("BENCH_", 0) == 0 &&
            e.path().extension() == ".json")
            baselines.push_back(e.path());
    std::sort(baselines.begin(), baselines.end());
    if (baselines.empty()) {
        std::fprintf(stderr, "bench_diff: no BENCH_*.json in %s\n",
                     baselineDir.c_str());
        return 2;
    }

    std::ostringstream report;
    report << "bench_diff: " << baselines.size() << " baseline(s), time "
           << "threshold " << opts.timeThreshold * 100 << "%\n";
    bool anyRegression = false;
    for (const fs::path& bp : baselines) {
        const std::string name = bp.filename().string();
        std::string btext, ctext;
        if (!readFile(bp, btext)) {
            std::fprintf(stderr, "bench_diff: cannot read %s\n",
                         bp.c_str());
            return 2;
        }
        fs::path cp = fs::path(currentDir) / name;
        if (!readFile(cp, ctext)) {
            report << "== " << name << ": REGRESSION (current run missing "
                   << cp.string() << ")\n";
            anyRegression = true;
            continue;
        }
        try {
            ecl::bench::DiffResult r = ecl::bench::diffBench(
                ecl::bench::parseFlatBench(btext),
                ecl::bench::parseFlatBench(ctext), opts);
            report << ecl::bench::renderReport(name, r);
            anyRegression = anyRegression || r.regression;
        } catch (const ecl::EclError& e) {
            report << "== " << name << ": REGRESSION (" << e.what()
                   << ")\n";
            anyRegression = true;
        }
    }
    report << "bench_diff: "
           << (anyRegression ? "REGRESSION DETECTED" : "all benches ok")
           << "\n";

    std::printf("%s", report.str().c_str());
    if (!reportFile.empty()) {
        std::ofstream out(reportFile);
        out << report.str();
        if (!out) {
            std::fprintf(stderr, "bench_diff: cannot write %s\n",
                         reportFile.c_str());
            return 2;
        }
    }
    return anyRegression ? 1 : 0;
}
