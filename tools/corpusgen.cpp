// corpusgen — regenerates and verifies the persisted scenario corpus
// (tests/corpus/*.scn; see src/corpus/corpus.h for the format).
//
// The standard set is defined HERE, deterministically: seeded
// full-grammar generator programs (the first eight seeds whose programs
// pass causality analysis), the two embedded paper designs under bursty /
// sparse / lockstep traffic, and the three shaped stress families (deep
// preemption nests, wide par fan-out, large valued payloads) at fixed
// sizes. Extending the corpus = extending standardScenarios() and
// running --write; never reshuffle existing entries — their digests are
// pinned by tests/test_corpus.cpp.
//
// Usage:
//   corpusgen [--dir DIR] --write         regenerate every .scn (+ checks)
//   corpusgen [--dir DIR] --check         verify sources + digests, no writes
//   corpusgen --seed-digests              print generator-stability digests
//
// DIR defaults to the source-tree corpus (ECL_CORPUS_DIR). Exit 0 on
// success/clean check, 1 on drift or compile failure, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/compiler.h"
#include "src/corpus/corpus.h"
#include "src/corpus/program_gen.h"
#include "src/support/strings.h"

#ifndef ECL_CORPUS_DIR
#define ECL_CORPUS_DIR "tests/corpus"
#endif

using namespace ecl;

namespace {

/// True when the scenario's module compiles (generator programs can be
/// statically non-causal; those seeds are skipped at corpus-definition
/// time, so every committed scenario compiles at every opt level).
bool compiles(const corpus::Scenario& s)
{
    try {
        corpus::compileScenario(s, 2);
        return true;
    } catch (const EclError&) {
        return false;
    }
}

std::vector<corpus::Scenario> standardScenarios()
{
    std::vector<corpus::Scenario> out;

    // Seeded generator programs: first 8 causally-valid seeds from 1 up
    // whose oracle trace shows at least one present output, cycling
    // through the stimulus profiles so the random-program family also
    // covers the traffic shapes. The observability requirement matters:
    // a program that never reaches an emit produces the same trace under
    // every profile, which defeats the differential sweep.
    const corpus::Profile genProfiles[] = {
        corpus::Profile::Random, corpus::Profile::Bursty,
        corpus::Profile::Sparse, corpus::Profile::Lockstep};
    int found = 0;
    for (unsigned seed = 1; found < 8 && seed < 200; ++seed) {
        corpus::Scenario s;
        char name[32];
        std::snprintf(name, sizeof name, "gen_s%03u", seed);
        s.name = name;
        s.kind = "generated";
        s.seed = seed;
        s.depth = 3;
        s.profile = genProfiles[found % 4];
        s.stimSeed = 1 + seed;
        s.instants = 120;
        s.source = corpus::regenerateSource(s);
        if (s.source.find("emit") == std::string::npos) continue;
        if (!compiles(s)) continue;
        // Present pure outputs render as '1', valued outputs as '=...'.
        std::string oracle = corpus::oracleTrace(s);
        if (oracle.find('1') == std::string::npos &&
            oracle.find('=') == std::string::npos)
            continue;
        out.push_back(std::move(s));
        ++found;
    }

    // The paper designs under real-traffic shapes.
    auto paper = [&](const char* name, const char* kind, const char* module,
                     corpus::Profile p, int instants) {
        corpus::Scenario s;
        s.name = name;
        s.kind = kind;
        s.module = module;
        s.profile = p;
        s.stimSeed = 7;
        s.instants = instants;
        out.push_back(std::move(s));
    };
    paper("stack_bursty", "paper_stack", "toplevel",
          corpus::Profile::Bursty, 160);
    paper("stack_sparse", "paper_stack", "toplevel",
          corpus::Profile::Sparse, 200);
    paper("buffer_bursty", "paper_buffer", "buffer_top",
          corpus::Profile::Bursty, 160);
    paper("buffer_lockstep", "paper_buffer", "buffer_top",
          corpus::Profile::Lockstep, 120);

    // Shaped stress families (depth doubles as the size parameter).
    auto shaped = [&](const std::string& name, const char* shape, int size,
                      corpus::Profile p) {
        corpus::Scenario s;
        s.name = name;
        s.kind = "shaped";
        s.shape = shape;
        s.depth = size;
        s.profile = p;
        s.stimSeed = 11;
        s.instants = 150;
        s.source = corpus::regenerateSource(s);
        out.push_back(std::move(s));
    };
    for (int nest : {4, 6, 8, 10})
        shaped("preempt_n" + std::to_string(nest), "deep_preempt", nest,
               nest % 4 == 0 ? corpus::Profile::Random
                             : corpus::Profile::Bursty);
    for (int width : {4, 8, 12, 16})
        shaped("par_w" + std::to_string(width), "wide_par", width,
               width % 8 == 0 ? corpus::Profile::Sparse
                              : corpus::Profile::Random);
    for (int size : {32, 64, 128, 256})
        shaped("payload_" + std::to_string(size), "payload", size,
               corpus::Profile::Payload);

    // Batch dirty-list stressers: sparse, bursty and dense-random
    // traffic over additional paper modules, so the batch scheduler's
    // mixed sparse/dense populations replay committed stimuli with
    // pinned oracles (appended — see the reshuffle rule). Each combo
    // was picked for observability: random traffic never completes a
    // packet for assemble/prochdr, so those modules stay out of the
    // corpus and are exercised by the batch differential suites
    // instead.
    paper("stack_checkcrc_sparse", "paper_stack", "checkcrc",
          corpus::Profile::Sparse, 200);
    paper("buffer_sparse", "paper_buffer", "buffer_top",
          corpus::Profile::Sparse, 200);
    paper("buffer_blinker_bursty", "paper_buffer", "blinker",
          corpus::Profile::Bursty, 160);
    paper("buffer_playback_sparse", "paper_buffer", "playback",
          corpus::Profile::Sparse, 200);
    {
        corpus::Scenario s;
        s.name = "buffer_producer_random";
        s.kind = "paper_buffer";
        s.module = "producer";
        s.profile = corpus::Profile::Random;
        s.stimSeed = 11;
        s.instants = 160;
        out.push_back(std::move(s));
    }

    // Independent-letter shapes for the verifier's partial-order
    // reduction differentials: every parallel arm awaits its own private
    // pure input, so composite input letters commute with their
    // singleton chains (appended — see the reshuffle rule).
    for (int width : {6, 10})
        shaped("par_pure" + std::to_string(width), "pure_par", width,
               corpus::Profile::Random);

    return out;
}

int writeCorpus(const std::string& dir)
{
    namespace fs = std::filesystem;
    fs::create_directories(dir);
    std::vector<corpus::Scenario> set = standardScenarios();
    for (corpus::Scenario& s : set) {
        if (!compiles(s)) {
            std::fprintf(stderr, "corpusgen: scenario %s does not compile\n",
                         s.name.c_str());
            return 1;
        }
        s.oracleDigest = corpus::computeOracleDigest(s);
        std::string path = dir + "/" + s.name + ".scn";
        std::ofstream out(path);
        out << corpus::serializeScenario(s);
        if (!out) {
            std::fprintf(stderr, "corpusgen: cannot write %s\n",
                         path.c_str());
            return 1;
        }
        std::printf("wrote %s (%s, %s, digest %s)\n", path.c_str(),
                    s.kind.c_str(), corpus::profileName(s.profile),
                    s.oracleDigest.c_str());
    }
    const std::string qpath = dir + "/QUARANTINE";
    if (!fs::exists(qpath)) {
        std::ofstream q(qpath);
        q << "# Scenario names listed here are skipped by the corpus\n"
             "# differential sweep. The contract is that this list stays\n"
             "# EMPTY: park a scenario only with a linked issue, and\n"
             "# test_corpus fails until the list is drained.\n";
    }
    std::printf("corpusgen: %zu scenarios written to %s\n", set.size(),
                dir.c_str());
    return 0;
}

int checkCorpus(const std::string& dir)
{
    std::vector<corpus::Scenario> set = corpus::loadCorpusDir(dir);
    if (set.empty()) {
        std::fprintf(stderr, "corpusgen: no scenarios in %s\n", dir.c_str());
        return 1;
    }
    int drifted = 0;
    for (const corpus::Scenario& s : set) {
        std::string regen = corpus::regenerateSource(s);
        if (!regen.empty() && regen != s.source) {
            std::printf("DRIFT %s: inline source differs from regenerated "
                        "text\n",
                        s.name.c_str());
            ++drifted;
            continue;
        }
        std::string digest = corpus::computeOracleDigest(s);
        if (digest != s.oracleDigest) {
            std::printf("DRIFT %s: oracle digest %s, pinned %s\n",
                        s.name.c_str(), digest.c_str(),
                        s.oracleDigest.c_str());
            ++drifted;
            continue;
        }
        std::printf("ok    %s (%s)\n", s.name.c_str(), digest.c_str());
    }
    std::printf("corpusgen: %zu scenarios, %d drifted\n", set.size(),
                drifted);
    return drifted ? 1 : 0;
}

int printSeedDigests()
{
    // The generator-stability pins: digests of the generated program TEXT
    // for a fixed seed set (tests/test_corpus.cpp asserts these, so any
    // reshuffle of ProgramGen for existing seeds is caught directly).
    for (unsigned seed = 1; seed <= 8; ++seed) {
        corpus::ProgramGen gen(seed, 3);
        std::printf("seed %u depth 3: %s\n", seed,
                    hex64(fnv1a64(gen.generate())).c_str());
    }
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    std::string dir = ECL_CORPUS_DIR;
    enum class Mode { None, Write, Check, SeedDigests } mode = Mode::None;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--dir" && i + 1 < argc) dir = argv[++i];
        else if (arg == "--write") mode = Mode::Write;
        else if (arg == "--check") mode = Mode::Check;
        else if (arg == "--seed-digests") mode = Mode::SeedDigests;
        else {
            std::fprintf(stderr, "usage: corpusgen [--dir DIR] "
                                 "--write|--check|--seed-digests\n");
            return 2;
        }
    }
    if (mode == Mode::None) {
        std::fprintf(stderr, "usage: corpusgen [--dir DIR] "
                             "--write|--check|--seed-digests\n");
        return 2;
    }
    try {
        switch (mode) {
        case Mode::Write: return writeCorpus(dir);
        case Mode::Check: return checkCorpus(dir);
        case Mode::SeedDigests: return printSeedDigests();
        case Mode::None: break;
        }
    } catch (const EclError& e) {
        std::fprintf(stderr, "corpusgen: %s\n", e.what());
        return 1;
    }
    return 2;
}
